/// \file replicate.hpp
/// Round-robin replication of an expensive dataflow sub-function
/// (the paper's Fig. 3 "vectorisation").
///
/// A ReplicatedPool wires:
///
///     in ──> Distributor ──> lane[0..N-1] (replica kernels) ──> Collector ──> out
///
/// The distributor hands tokens to lanes cyclically and the collector reads
/// results back in the same cyclic order, so output ordering is preserved
/// exactly as the paper describes ("by working cyclically ordering of result
/// consumption is maintained").
///
/// The distributor is also where the physical feed limit lives: the paper
/// stores the replicated hazard/interest-rate constant data in *dual-ported
/// URAM*, so however many replica functions exist, the scheduler can stream
/// at most `feed_elements_per_cycle` curve elements per cycle into the pool.
/// Each token carries a data requirement (`feed_elements(token)`); the
/// distributor is occupied for that many cycles / feed rate before it can
/// hand out the next token. This reproduces the paper's observation that
/// replicating six times "doubled performance": the 1024-element scans are
/// feed-limited at 2 elements/cycle, not compute-limited.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "hls/stage.hpp"
#include "hls/stream.hpp"
#include "sim/simulation.hpp"

namespace cdsflow::hls {

/// Distributes tokens round-robin across lane streams; occupied per token by
/// the feed cost (data streaming from shared URAM ports).
template <typename T>
class DistributorStage final : public StageBase {
 public:
  DistributorStage(std::string name, Channel<T>& in,
                   std::vector<Channel<T>*> lanes, StageTiming timing,
                   std::uint64_t expected, sim::Trace* trace = nullptr,
                   std::function<Cycle(const T&)> feed_cost = nullptr)
      : StageBase(std::move(name), timing, expected, trace),
        in_(in),
        lanes_(std::move(lanes)),
        feed_cost_(std::move(feed_cost)) {
    CDSFLOW_EXPECT(!lanes_.empty(), "DistributorStage requires lanes");
    for (auto* l : lanes_) {
      CDSFLOW_EXPECT(l != nullptr, "DistributorStage lane is null");
    }
  }

  bool step(Cycle now) override {
    if (processed_ >= expected_ || now < next_issue_) return false;
    if (!in_.can_pop()) {
      in_.record_pop_stall();
      return false;
    }
    Channel<T>& lane = *lanes_[rr_];
    if (!lane.can_push()) {
      lane.record_push_stall();
      return false;  // strict round-robin: waits for *this* lane
    }
    const T token = in_.pop();
    const Cycle occupied =
        std::max<Cycle>(feed_cost_ ? feed_cost_(token) : timing_.ii, 1);
    lane.push(token);
    rr_ = (rr_ + 1) % lanes_.size();
    note_issue(now, occupied);
    next_issue_ = now + occupied;
    return true;
  }

  Cycle next_wake(Cycle now) const override {
    if (processed_ >= expected_) return kNoWake;
    if (next_issue_ > now && in_.can_pop() && lanes_[rr_]->can_push()) {
      return next_issue_;
    }
    return kNoWake;
  }

  bool done() const override { return processed_ >= expected_; }

  std::string describe_state() const override {
    return "dispatched " + std::to_string(processed_) + "/" +
           std::to_string(expected_) + ", next lane " + std::to_string(rr_);
  }

 private:
  Channel<T>& in_;
  std::vector<Channel<T>*> lanes_;
  std::function<Cycle(const T&)> feed_cost_;
  std::size_t rr_ = 0;
  Cycle next_issue_ = 0;
};

/// Reads lane results back in cyclic order and forwards them on a single
/// stream, preserving the original token order.
template <typename T>
class CollectorStage final : public StageBase {
 public:
  CollectorStage(std::string name, std::vector<Channel<T>*> lanes,
                 Channel<T>& out, StageTiming timing, std::uint64_t expected,
                 sim::Trace* trace = nullptr)
      : StageBase(std::move(name), timing, expected, trace),
        lanes_(std::move(lanes)),
        out_(out) {
    CDSFLOW_EXPECT(!lanes_.empty(), "CollectorStage requires lanes");
    for (auto* l : lanes_) {
      CDSFLOW_EXPECT(l != nullptr, "CollectorStage lane is null");
    }
  }

  bool step(Cycle now) override {
    if (processed_ >= expected_ || now < next_issue_) return false;
    Channel<T>& lane = *lanes_[rr_];
    if (!lane.can_pop()) {
      lane.record_pop_stall();
      return false;  // in-order: waits for *this* lane's result
    }
    if (!out_.can_push()) {
      out_.record_push_stall();
      return false;
    }
    out_.push(lane.pop());
    rr_ = (rr_ + 1) % lanes_.size();
    const Cycle occupied = std::max<Cycle>(timing_.ii, 1);
    note_issue(now, occupied);
    next_issue_ = now + occupied;
    return true;
  }

  Cycle next_wake(Cycle now) const override {
    if (processed_ >= expected_) return kNoWake;
    if (next_issue_ > now && lanes_[rr_]->can_pop() && out_.can_push()) {
      return next_issue_;
    }
    return kNoWake;
  }

  bool done() const override { return processed_ >= expected_; }

  std::string describe_state() const override {
    return "collected " + std::to_string(processed_) + "/" +
           std::to_string(expected_) + ", next lane " + std::to_string(rr_);
  }

 private:
  std::vector<Channel<T>*> lanes_;
  Channel<T>& out_;
  std::size_t rr_ = 0;
  Cycle next_issue_ = 0;
};

/// Configuration for a replicated sub-function pool.
struct ReplicationConfig {
  /// Number of replica functions (the paper uses 6).
  std::size_t lanes = 6;
  /// Aggregate curve elements the distributor can stream per cycle
  /// (dual-ported URAM => 2).
  double feed_elements_per_cycle = 2.0;
  /// Depth of the per-lane streams.
  std::size_t lane_stream_depth = kDefaultStreamDepth;
};

/// Handles to the stages a ReplicatedPool instantiates (for tests/benches:
/// lane utilisation, busy cycles).
template <typename In, typename Out>
struct ReplicatedPoolHandles {
  DistributorStage<In>* distributor = nullptr;
  std::vector<MapStage<In, Out>*> lanes;
  CollectorStage<Out>* collector = nullptr;
};

/// Builds the distributor + N replica MapStages + collector inside `sim`,
/// between `in` and `out`. `make_kernel(lane)` returns the replica kernel
/// (each replica owns its own state), `work` its per-token occupancy, and
/// `feed_elements` the number of constant-data elements the distributor must
/// stream for a token.
template <typename In, typename Out>
ReplicatedPoolHandles<In, Out> make_replicated_pool(
    sim::Simulation& sim, const std::string& name, Channel<In>& in,
    Channel<Out>& out, const ReplicationConfig& cfg,
    std::function<std::function<Out(const In&)>(std::size_t)> make_kernel,
    std::function<Cycle(const In&)> work,
    std::function<double(const In&)> feed_elements, StageTiming lane_timing,
    std::uint64_t expected_tokens, sim::Trace* trace = nullptr) {
  CDSFLOW_EXPECT(cfg.lanes >= 1, "replication requires >= 1 lane");
  CDSFLOW_EXPECT(cfg.feed_elements_per_cycle > 0.0,
                 "feed rate must be positive");

  ReplicatedPoolHandles<In, Out> handles;
  std::vector<Channel<In>*> lane_in(cfg.lanes);
  std::vector<Channel<Out>*> lane_out(cfg.lanes);
  for (std::size_t l = 0; l < cfg.lanes; ++l) {
    lane_in[l] = &make_stream<In>(sim, name + ".lane" + std::to_string(l) + ".in",
                                  cfg.lane_stream_depth);
    lane_out[l] = &make_stream<Out>(
        sim, name + ".lane" + std::to_string(l) + ".out", cfg.lane_stream_depth);
  }

  // Token i goes to lane i % N; compute each lane's exact share.
  std::vector<std::uint64_t> lane_share(cfg.lanes,
                                        expected_tokens / cfg.lanes);
  for (std::size_t l = 0; l < expected_tokens % cfg.lanes; ++l) {
    ++lane_share[l];
  }

  const double feed_rate = cfg.feed_elements_per_cycle;
  std::function<Cycle(const In&)> feed_cost = nullptr;
  if (feed_elements) {
    feed_cost = [feed_elements, feed_rate](const In& t) -> Cycle {
      const double elems = feed_elements(t);
      return static_cast<Cycle>(elems / feed_rate + 0.999999);
    };
  }

  handles.distributor = &sim.add_process<DistributorStage<In>>(
      name + ".sched", in, lane_in, StageTiming{.latency = 1, .ii = 1},
      expected_tokens, trace, std::move(feed_cost));

  for (std::size_t l = 0; l < cfg.lanes; ++l) {
    handles.lanes.push_back(&sim.add_process<MapStage<In, Out>>(
        name + ".rep" + std::to_string(l), *lane_in[l], *lane_out[l],
        make_kernel(l), lane_timing, lane_share[l], trace, work));
  }

  handles.collector = &sim.add_process<CollectorStage<Out>>(
      name + ".collect", lane_out, out, StageTiming{.latency = 1, .ii = 1},
      expected_tokens, trace);

  return handles;
}

}  // namespace cdsflow::hls
