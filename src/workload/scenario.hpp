/// \file scenario.hpp
/// Named end-to-end workloads: curves + portfolio + description -- plus
/// generated *scenario sets* for the sweep engine (one book x N scenarios).
///
/// `paper_scenario` is the workload every table/figure bench runs: 1024
/// interest and 1024 hazard rates (paper Sec. II-B) with the calibrated
/// option mix. Other scenarios feed the examples and property tests.
///
/// A `ScenarioSet` is N perturbed copies of a base curve's knot *values*
/// on the base curve's fixed knot times, stored scenario-major (row s =
/// scenario s) -- exactly the `cds::ScenarioMatrix` layout the sweep
/// pricer consumes. Generation is bit-deterministic: every generator is a
/// pure function of (base curve, parameters, seed), scenario s's random
/// draws come from `Rng(seed).split(s)` where randomness is involved, and
/// generation always runs on the calling thread -- so the same seed yields
/// the identical matrix regardless of run, platform or how many workers
/// later shard the sweep (tested in test_workload).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cds/curve.hpp"
#include "cds/sweep_pricer.hpp"
#include "cds/types.hpp"

namespace cdsflow::workload {

struct Scenario {
  std::string name;
  std::string description;
  cds::TermStructure interest;
  cds::TermStructure hazard;
  std::vector<cds::CdsOption> options;
};

/// The paper's experimental setup: 1024+1024 rates, `n_options` contracts.
/// The paper does not state its batch size; benches default to a size large
/// enough to amortise one-time costs the same way (>= several hundred).
Scenario paper_scenario(std::size_t n_options = 1024, std::uint64_t seed = 42);

/// Small smoke scenario for tests (fast: 64 curve points, few options).
Scenario smoke_scenario(std::size_t n_options = 16, std::uint64_t seed = 7);

/// Stressed-credit scenario for the examples (elevated hazards, mixed
/// frequencies including monthly).
Scenario stressed_scenario(std::size_t n_options = 256,
                           std::uint64_t seed = 1234);

// --- scenario sets (the sweep engine's N axis) -----------------------------

/// N scenarios over fixed base knots, scenario-major. Owns its storage;
/// matrix() is the borrowed view the sweep pricer takes (valid while the
/// set is alive and unmodified).
struct ScenarioSet {
  std::string name;
  cds::ScenarioKind kind = cds::ScenarioKind::kHazard;
  std::size_t count = 0;
  /// Base knot times, copied from the source curves (empty when the kind
  /// does not move that curve).
  std::vector<double> hazard_times;
  std::vector<double> rate_times;
  /// count x knots row-major values (empty when the kind does not move
  /// that curve).
  std::vector<double> hazard_values;
  std::vector<double> rate_values;

  cds::ScenarioMatrix matrix() const;
  /// Materialises scenario s's curve(s) -- the naive comparator's input.
  cds::TermStructure hazard_curve(std::size_t s) const;
  cds::TermStructure rate_curve(std::size_t s) const;
};

/// Parallel stress ladder: `count` hazard scenarios shifting every knot by
/// an evenly spaced shock in [-max_shock_bp, +max_shock_bp] basis points
/// (scenario 0 the most negative, the last the most positive; rates are
/// floored at a small positive value so every scenario stays priceable).
ScenarioSet parallel_stress_scenarios(const cds::TermStructure& hazard,
                                      std::size_t count, double max_shock_bp);

/// Bucketed stress grid: the knot index range split into `buckets`
/// contiguous buckets, each shocked up and down by `shock_bp` basis points
/// in turn -- 2 * buckets hazard scenarios (up before down, front bucket
/// first), the sweep-scale analogue of the CS01 ladder's bumped curves.
ScenarioSet bucketed_stress_scenarios(const cds::TermStructure& hazard,
                                      std::size_t buckets, double shock_bp);

/// Historical-replay stand-in: a sequence of `count` interest-curve states
/// following a deterministic per-knot random walk from the base curve
/// (scenario s's steps drawn from Rng(seed).split(s), walk accumulated in
/// scenario order). Rate scenarios: the D column re-tabulates, Q is shared.
ScenarioSet replay_scenarios(const cds::TermStructure& interest,
                             std::size_t count, double step_bp = 2.0,
                             std::uint64_t seed = 97);

/// Deterministic Monte-Carlo hazard paths: each scenario applies an
/// independent multiplicative lognormal shock exp(vol * z_j) per knot,
/// z drawn from Rng(seed).split(s) -- scenarios are independent of each
/// other, so any subset or ordering reproduces the same rows.
ScenarioSet mc_hazard_scenarios(const cds::TermStructure& hazard,
                                std::size_t count, double vol = 0.25,
                                std::uint64_t seed = 4242);

/// Joint stress ladder: like parallel_stress_scenarios but shifting both
/// curves (hazard by the ladder shock, interest by a quarter of it) --
/// both columns re-tabulate per scenario.
ScenarioSet joint_stress_scenarios(const cds::TermStructure& interest,
                                   const cds::TermStructure& hazard,
                                   std::size_t count, double max_shock_bp);

}  // namespace cdsflow::workload
