/// \file stream_quotes.cpp
/// Streaming quote-ingest walkthrough (the paper's AAT-style real-time
/// future work, executed natively): a deterministic Poisson feed of CDS
/// quote requests -- with periodic hazard-quote updates -- flows through the
/// bounded ingest queue into micro-batches priced on concurrent pricer
/// lanes, and the run reports ingest-to-result latency percentiles,
/// deadline misses and the incremental-risk accounting (how few grids a
/// quote update actually re-tabulates).
///
/// The sibling example streaming_quotes.cpp asks the *simulated FPGA
/// engine* the same question at cycle level; this one runs the real host
/// runtime end to end.
///
/// Run:  ./stream_quotes [n_events]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "common/format.hpp"
#include "runtime/stream_runtime.hpp"
#include "report/table.hpp"
#include "workload/curves.hpp"
#include "workload/feed.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_events =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8192;

  const auto interest = workload::paper_interest_curve();
  const auto hazard = workload::paper_hazard_curve();

  // A standard-tenor book: most quote requests share a handful of payment
  // schedules, so the lanes' persistent grid caches warm up immediately.
  workload::QuoteFeedSpec spec;
  spec.events = n_events;
  spec.hazard_update_every = 256;  // a quote update every 256 events
  spec.book.maturity_tenor_grid = {1.0, 3.0, 5.0, 7.0, 10.0};
  spec.seed = 314;

  // Pass 1 -- unpaced: how fast can the stream go end to end?
  runtime::StreamConfig cfg;
  cfg.max_batch = 512;
  cfg.max_wait_us = 200;
  cfg.deadline_us = 50'000;  // 50 ms ingest-to-result budget
  runtime::StreamRuntime saturation(interest, hazard, cfg);
  const auto unpaced = saturation.play(workload::make_quote_feed(spec, hazard));
  std::cout << "saturation (unpaced feed): "
            << with_thousands(unpaced.wall_events_per_second, 0)
            << " quotes/s wall over " << unpaced.lanes << " lane(s), "
            << unpaced.batches.size() << " micro-batches\n\n";

  // Pass 2 -- paced at ~30% of saturation: the latency picture a live desk
  // would see, quote updates included.
  spec.rate_hz = std::max(1.0, unpaced.wall_events_per_second * 0.3);
  runtime::StreamRuntime live(interest, hazard, cfg);
  const auto report = live.play(workload::make_quote_feed(spec, hazard));

  auto us = [](double seconds) { return fixed(seconds * 1e6, 1) + " us"; };
  report::Table table("streaming ingest at ~30% of saturation");
  table.set_columns({"Metric", "Value"});
  table.add_row({"events accepted", std::to_string(report.events_in)});
  table.add_row({"quotes priced", std::to_string(report.events_priced)});
  table.add_row({"hazard-quote updates",
                 std::to_string(report.hazard_updates)});
  table.add_row({"micro-batches", std::to_string(report.batches.size())});
  table.add_row({"queue high water",
                 std::to_string(report.queue_high_water)});
  table.add_row({"p50 ingest-to-result", us(report.p50_latency_seconds)});
  table.add_row({"p99 ingest-to-result", us(report.p99_latency_seconds)});
  table.add_row({"worst case", us(report.max_latency_seconds)});
  table.add_row({"deadline misses (50 ms)",
                 std::to_string(report.deadline_misses)});
  table.add_row({"grids re-tabulated",
                 std::to_string(report.grids_retabulated) + " (vs " +
                     std::to_string(report.full_rebuild_grids) +
                     " full-rebuild)"});
  std::cout << table.render_text() << '\n';

  std::cout << "first five quotes off the stream:\n";
  for (std::size_t i = 0; i < 5 && i < report.run.results.size(); ++i) {
    std::cout << "  quote " << report.run.results[i].id << ": "
              << fixed(report.run.results[i].spread_bps, 2) << " bps\n";
  }
  return 0;
}
