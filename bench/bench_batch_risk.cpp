/// \file bench_batch_risk.cpp
/// Batched Greeks: single-thread throughput of the grid-level risk kernel
/// (BatchPricer::price_with_sensitivities) against the per-option bumped
/// repricing loop (compute_sensitivities + cs01_ladder), reported as JSON
/// for the cross-PR perf trajectory.
///
/// The book is the standard-tenor case (maturities on the 1/3/5/7/10y
/// quoting grid) because that is the workload the risk desk actually runs:
/// the whole book collapses to a handful of payment grids, each bumped
/// scenario is tabulated once per grid, and a full Greeks sweep (CS01, IR01,
/// Rec01, JTD plus a 5-bucket CS01 ladder) costs one branch-free combine per
/// option. The scalar loop pays (7 + 2 * buckets) full repricings per
/// option. Every per-option figure is cross-checked against the scalar
/// reference (<= 1e-9 relative required; the bench fails otherwise; the
/// kernel documents 1e-12). A sharded-runtime section reports the wall
/// view with cpu-batch-risk workers.
///
/// Usage: bench_batch_risk [n_options] [knots] [out.json]
///   defaults: 16384 1024 BENCH_cpu_risk.json

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cds/batch_pricer.hpp"
#include "cds/risk.hpp"
#include "common/format.hpp"
#include "common/stats.hpp"
#include "report/table.hpp"
#include "runtime/portfolio_runtime.hpp"
#include "workload/curves.hpp"
#include "workload/options.hpp"

namespace {

using namespace cdsflow;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16384;
  const std::size_t knots =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1024;
  const std::string out_path = argc > 3 ? argv[3] : "BENCH_cpu_risk.json";

  const auto interest = workload::paper_interest_curve(knots);
  const auto hazard = workload::paper_hazard_curve(knots);

  workload::PortfolioSpec spec;
  spec.count = n_options;
  spec.seed = 11;
  spec.maturity_tenor_grid = {1.0, 3.0, 5.0, 7.0, 10.0};
  const auto book = workload::make_portfolio(spec);

  cds::BatchRiskConfig config;
  config.ladder_edges = {0.0, 1.0, 3.0, 5.0, 7.0, 10.0};
  const std::size_t n_buckets = config.ladder_edges.size() - 1;

  std::cout << "== Batched Greeks: grid-level risk kernel vs per-option "
               "bump loop, "
            << n_options << " options, " << knots << "-knot curves, "
            << n_buckets << "-bucket ladder ==\n\n";

  // Scalar reference: the naive post-pricing workflow, (7 + 2 * buckets)
  // full repricings per option. One measured pass -- it is the slow side.
  std::vector<cds::Sensitivities> want(book.size());
  std::vector<double> want_ladder(book.size() * n_buckets);
  double scalar_seconds = 0.0;
  {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < book.size(); ++i) {
      want[i] =
          cds::compute_sensitivities(interest, hazard, book[i], config.bump);
      const auto row = cds::cs01_ladder(interest, hazard, book[i],
                                        config.ladder_edges, config.bump);
      std::copy(row.begin(), row.end(),
                want_ladder.begin() +
                    static_cast<std::ptrdiff_t>(i * n_buckets));
    }
    scalar_seconds = seconds_since(t0);
  }

  // Batch kernel: min over repeats with a warmed workspace.
  const cds::BatchPricer batch(interest, hazard);
  cds::BatchPricer::RiskWorkspace ws;
  std::vector<cds::Sensitivities> got(book.size());
  std::vector<double> got_ladder(book.size() * n_buckets);
  cds::BatchRiskStats stats;
  double batch_seconds = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    stats = batch.price_with_sensitivities(book, got, got_ladder, ws, config);
    batch_seconds = std::min(batch_seconds, seconds_since(t0));
  }

  double max_rel_error = 0.0;
  for (std::size_t i = 0; i < book.size(); ++i) {
    max_rel_error = std::max(
        {max_rel_error,
         relative_difference(got[i].spread_bps, want[i].spread_bps),
         relative_difference(got[i].cs01, want[i].cs01),
         relative_difference(got[i].ir01, want[i].ir01),
         relative_difference(got[i].rec01, want[i].rec01),
         relative_difference(got[i].jtd, want[i].jtd)});
  }
  double max_ladder_error = 0.0;
  for (std::size_t i = 0; i < want_ladder.size(); ++i) {
    max_ladder_error = std::max(
        max_ladder_error, relative_difference(got_ladder[i], want_ladder[i]));
  }
  const double speedup = scalar_seconds / batch_seconds;
  const double n = static_cast<double>(book.size());

  report::Table table("Single-thread Greeks throughput, scalar vs batch");
  table.set_columns({"Path", "Options/s", "Repricings", "Max rel err"});
  table.add_row({"per-option bumps", with_thousands(n / scalar_seconds, 0),
                 with_thousands(double(stats.scalar_repricings), 0), "--"});
  table.add_row({"grid-level bumps", with_thousands(n / batch_seconds, 0),
                 std::to_string(stats.base.unique_schedules) + " grids x " +
                     std::to_string(4 + 2 * n_buckets) + " scenarios",
                 compact(std::max(max_rel_error, max_ladder_error))});
  std::cout << table.render_text() << '\n'
            << "speedup: " << fixed(speedup, 1) << "x single-thread\n";

  // Sharded-runtime wall clock with batched risk workers.
  const unsigned workers = std::max(1u, std::thread::hardware_concurrency());
  runtime::RuntimeConfig cfg;
  cfg.engine = "cpu-batch-risk";
  cfg.workers = workers;
  cfg.cpu.ladder_edges = config.ladder_edges;
  runtime::PortfolioRuntime rt(interest, hazard, cfg);
  const double wall_ops = rt.price(book).wall_options_per_second;
  std::cout << "sharded runtime (" << workers
            << " worker(s)): " << with_thousands(wall_ops, 0)
            << " options/s wall, full Greeks\n";

  const bool parity_ok = max_rel_error <= 1e-9 && max_ladder_error <= 1e-9;
  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"cpu_risk\",\n"
       << "  \"n_options\": " << n_options << ",\n"
       << "  \"curve_knots\": " << knots << ",\n"
       << "  \"ladder_buckets\": " << n_buckets << ",\n"
       << "  \"scalar_seconds\": " << scalar_seconds << ",\n"
       << "  \"batch_seconds\": " << batch_seconds << ",\n"
       << "  \"single_thread_speedup\": " << speedup << ",\n"
       << "  \"max_rel_error\": " << max_rel_error << ",\n"
       << "  \"max_ladder_rel_error\": " << max_ladder_error << ",\n"
       << "  \"parity_within_1e9\": " << (parity_ok ? "true" : "false")
       << ",\n"
       << "  \"unique_schedules\": " << stats.base.unique_schedules << ",\n"
       << "  \"bumped_grid_points\": " << stats.bumped_grid_points << ",\n"
       << "  \"scalar_repricings\": " << stats.scalar_repricings << ",\n"
       << "  \"sharded_runtime\": {\"workers\": " << workers
       << ", \"wall_options_per_second\": " << wall_ops << "}\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  std::cout << "JSON written to " << out_path << '\n';

  if (!parity_ok) {
    std::cerr << "FAIL: batched Greeks diverged from the scalar reference "
                 "beyond 1e-9 relative\n";
    return 1;
  }
  if (speedup < 10.0) {
    std::cerr << "warning: single-thread speedup " << fixed(speedup, 2)
              << "x below the 10x acceptance bar on this host/size\n";
  }
  return 0;
}
