// Control case: the same annotation vocabulary as the seeded violations,
// used correctly. Must compile warning-free on every compiler -- if this
// target fails, the harness is rejecting the vocabulary itself rather
// than the violations, and the WILL_FAIL results of the cf_* cases mean
// nothing.

#include "common/thread_annotations.hpp"

#include <condition_variable>
#include <deque>

namespace {

class Mailbox {
 public:
  void post(long message) CDSFLOW_EXCLUDES(mu_) {
    {
      cdsflow::MutexLock lock(mu_);
      messages_.push_back(message);
      bump_locked();
    }
    ready_.notify_one();
  }

  long wait_pop() CDSFLOW_EXCLUDES(mu_) {
    cdsflow::UniqueLock lock(mu_);
    ready_.wait(lock.native(),
                [this]() CDSFLOW_REQUIRES(mu_) { return !messages_.empty(); });
    const long message = messages_.front();
    messages_.pop_front();
    return message;
  }

  long posted() const CDSFLOW_EXCLUDES(mu_) {
    cdsflow::MutexLock lock(mu_);
    return posted_;
  }

 private:
  void bump_locked() CDSFLOW_REQUIRES(mu_) { ++posted_; }

  mutable cdsflow::Mutex mu_;
  std::condition_variable ready_;
  std::deque<long> messages_ CDSFLOW_GUARDED_BY(mu_);
  long posted_ CDSFLOW_GUARDED_BY(mu_) = 0;
};

}  // namespace

long cf_clean_probe() {
  Mailbox box;
  box.post(7);
  const long got = box.wait_pop();
  return got + box.posted();
}
