#include "workload/options.hpp"

#include "cds/schedule.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace cdsflow::workload {

void PortfolioSpec::validate() const {
  CDSFLOW_EXPECT(count >= 1, "portfolio must contain at least one option");
  CDSFLOW_EXPECT(maturity_min_years > 0.0, "minimum maturity must be > 0");
  CDSFLOW_EXPECT(maturity_max_years >= maturity_min_years,
                 "maturity range is inverted");
  for (double tenor : maturity_tenor_grid) {
    CDSFLOW_EXPECT(tenor > 0.0, "tenor-grid maturities must be positive");
  }
  CDSFLOW_EXPECT(!frequencies.empty(), "at least one payment frequency");
  CDSFLOW_EXPECT(frequencies.size() == frequency_weights.size(),
                 "frequency/weight length mismatch");
  for (double f : frequencies) {
    CDSFLOW_EXPECT(f > 0.0, "payment frequencies must be positive");
  }
  CDSFLOW_EXPECT(recovery_min >= 0.0 && recovery_max < 1.0 &&
                     recovery_min <= recovery_max,
                 "recovery range must lie in [0, 1)");
}

std::vector<cds::CdsOption> make_portfolio(const PortfolioSpec& spec) {
  spec.validate();
  Rng rng(spec.seed);
  std::vector<cds::CdsOption> options;
  options.reserve(spec.count);
  for (std::size_t i = 0; i < spec.count; ++i) {
    cds::CdsOption opt;
    opt.id = static_cast<std::int32_t>(i);
    if (spec.maturity_tenor_grid.empty()) {
      opt.maturity_years =
          rng.uniform(spec.maturity_min_years, spec.maturity_max_years);
    } else {
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(spec.maturity_tenor_grid.size()) - 1));
      opt.maturity_years = spec.maturity_tenor_grid[idx];
    }
    opt.payment_frequency =
        spec.frequencies[rng.weighted_index(spec.frequency_weights)];
    opt.recovery_rate = rng.uniform(spec.recovery_min, spec.recovery_max);
    opt.validate();
    options.push_back(opt);
  }
  return options;
}

std::uint64_t total_time_points(const std::vector<cds::CdsOption>& options) {
  std::uint64_t total = 0;
  for (const auto& opt : options) total += cds::schedule_size(opt);
  return total;
}

}  // namespace cdsflow::workload
