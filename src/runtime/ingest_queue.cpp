#include "runtime/ingest_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace cdsflow::runtime {

const char* to_string(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock:
      return "block";
    case BackpressurePolicy::kDropOldest:
      return "drop-oldest";
  }
  return "?";
}

BackpressurePolicy parse_backpressure_policy(const std::string& name) {
  if (name == "block") return BackpressurePolicy::kBlock;
  if (name == "drop-oldest") return BackpressurePolicy::kDropOldest;
  throw Error("unknown backpressure policy '" + name +
              "'; known: block, drop-oldest");
}

QuoteEvent option_event(cds::CdsOption option) {
  QuoteEvent event;
  event.kind = QuoteEvent::Kind::kOption;
  event.option = option;
  return event;
}

QuoteEvent hazard_quote_event(std::size_t knot, double rate) {
  QuoteEvent event;
  event.kind = QuoteEvent::Kind::kHazardQuote;
  event.knot = knot;
  event.rate = rate;
  return event;
}

IngestQueue::IngestQueue(std::size_t capacity, BackpressurePolicy policy)
    : capacity_(capacity), policy_(policy) {
  CDSFLOW_EXPECT(capacity_ > 0, "ingest queue capacity must be positive");
}

bool IngestQueue::push(QuoteEvent event) {
  // Stamp on entry, before the lock and any backpressure wait: time a
  // producer spends parked by the kBlock policy is part of the event's
  // ingest-to-result latency and of deadline accounting, not free.
  event.ingest = StreamClock::now();
  UniqueLock lock(mutex_);
  if (closed_) {
    ++stats_.rejected_closed;
    return false;
  }
  if (queue_.size() >= capacity_) {
    if (policy_ == BackpressurePolicy::kBlock) {
      ++stats_.blocked_pushes;
      not_full_.wait(lock.native(), [this]() CDSFLOW_REQUIRES(mutex_) {
        return closed_ || queue_.size() < capacity_;
      });
      if (closed_) {
        ++stats_.rejected_closed;
        return false;
      }
    } else {
      while (queue_.size() >= capacity_) {
        queue_.pop_front();
        ++stats_.dropped_oldest;
      }
    }
  }
  event.sequence = next_sequence_++;
  queue_.push_back(std::move(event));
  ++stats_.accepted;
  stats_.high_water = std::max(stats_.high_water, queue_.size());
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

void IngestQueue::close() {
  {
    MutexLock lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

std::optional<QuoteEvent> IngestQueue::pop() {
  UniqueLock lock(mutex_);
  not_empty_.wait(lock.native(), [this]() CDSFLOW_REQUIRES(mutex_) {
    return closed_ || !queue_.empty();
  });
  if (queue_.empty()) return std::nullopt;  // drained
  QuoteEvent event = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return event;
}

std::optional<QuoteEvent> IngestQueue::pop_for(StreamClock::duration timeout) {
  UniqueLock lock(mutex_);
  not_empty_.wait_for(lock.native(), timeout,
                      [this]() CDSFLOW_REQUIRES(mutex_) {
                        return closed_ || !queue_.empty();
                      });
  if (queue_.empty()) return std::nullopt;  // timeout or drained
  QuoteEvent event = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return event;
}

bool IngestQueue::closed() const {
  MutexLock lock(mutex_);
  return closed_;
}

bool IngestQueue::drained() const {
  MutexLock lock(mutex_);
  return closed_ && queue_.empty();
}

std::size_t IngestQueue::size() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

IngestQueueStats IngestQueue::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

MicroBatcher::MicroBatcher(std::size_t max_batch,
                           StreamClock::duration max_wait)
    : max_batch_(max_batch), max_wait_(max_wait) {
  CDSFLOW_EXPECT(max_batch_ > 0, "micro-batch size must be positive");
  CDSFLOW_EXPECT(max_wait_ >= StreamClock::duration::zero(),
                 "micro-batch max wait must be non-negative");
}

bool MicroBatcher::add(QuoteEvent event) {
  CDSFLOW_ASSERT(events_.size() < max_batch_,
                 "add() on a full micro-batch; take() it first");
  if (events_.empty()) opened_ = event.ingest;
  events_.push_back(std::move(event));
  return events_.size() >= max_batch_;
}

bool MicroBatcher::due(StreamClock::time_point now) const {
  return open() && now - opened_ >= max_wait_;
}

StreamClock::duration MicroBatcher::time_until_due(
    StreamClock::time_point now) const {
  if (!open()) return max_wait_;
  const auto waited = now - opened_;
  if (waited >= max_wait_) return StreamClock::duration::zero();
  return max_wait_ - waited;
}

std::vector<QuoteEvent> MicroBatcher::take() {
  std::vector<QuoteEvent> batch = std::move(events_);
  events_.clear();  // moved-from state is unspecified; make it empty again
  return batch;
}

}  // namespace cdsflow::runtime
