// Stub arch TU for the fp-contract fixture (never compiled; cdslint only
// needs the file to exist so the rule checks its CMake compile options).
double fixture_kernel(double a, double b, double c) { return a * b + c; }
