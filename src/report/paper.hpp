/// \file paper.hpp
/// The numbers the paper publishes, verbatim -- the reference column of
/// every reproduction table (Brown, Klaisoongnoen, Thomson Brown,
/// CLUSTER 2021, arXiv:2108.03982).

#pragma once

namespace cdsflow::report::paper {

// --- Table I: options/second, 1024 interest + hazard rates ------------------
inline constexpr double kCpuSingleCoreOptsPerSec = 8738.92;
inline constexpr double kXilinxLibraryOptsPerSec = 3462.53;
inline constexpr double kOptimisedDataflowOptsPerSec = 7368.42;
inline constexpr double kInterOptionOptsPerSec = 13298.70;
inline constexpr double kVectorisedOptsPerSec = 27675.67;

// --- Table II: scaling + power ----------------------------------------------
inline constexpr double kCpu24CoreOptsPerSec = 75823.77;
inline constexpr double kCpu24CoreWatts = 175.39;
inline constexpr double kCpu24CoreOptsPerWatt = 432.31;

inline constexpr double kFpga1EngineOptsPerSec = 27675.67;
inline constexpr double kFpga1EngineWatts = 35.86;
inline constexpr double kFpga1EngineOptsPerWatt = 771.77;

inline constexpr double kFpga2EngineOptsPerSec = 53763.86;
inline constexpr double kFpga2EngineWatts = 35.79;
inline constexpr double kFpga2EngineOptsPerWatt = 1502.20;

inline constexpr double kFpga5EngineOptsPerSec = 114115.92;
inline constexpr double kFpga5EngineWatts = 37.38;
inline constexpr double kFpga5EngineOptsPerWatt = 3052.86;

// --- headline ratios the conclusions cite -----------------------------------
/// Vectorised engine vs the Xilinx library engine ("around eight times").
inline constexpr double kSpeedupVsLibrary = kVectorisedOptsPerSec /
                                            kXilinxLibraryOptsPerSec;
/// Five engines vs the 24-core CPU ("around 1.55 times").
inline constexpr double kFpgaVsCpu = kFpga5EngineOptsPerSec /
                                     kCpu24CoreOptsPerSec;
/// CPU vs FPGA power ("4.7 times less power").
inline constexpr double kPowerRatio = kCpu24CoreWatts / kFpga5EngineWatts;
/// Efficiency ratio ("around seven times the power efficiency").
inline constexpr double kEfficiencyRatio = kFpga5EngineOptsPerWatt /
                                           kCpu24CoreOptsPerWatt;

/// Experimental protocol: "results are averaged over three runs".
inline constexpr int kRunsPerMeasurement = 3;
/// "for all experiments 1024 interest and hazard rates are used".
inline constexpr int kCurvePoints = 1024;
/// CPU comparator core count.
inline constexpr int kCpuCores = 24;

}  // namespace cdsflow::report::paper
