#include "engines/vectorised_engine.hpp"

#include "common/error.hpp"

namespace cdsflow::engine {

VectorisedEngine::VectorisedEngine(cds::TermStructure interest,
                                   cds::TermStructure hazard,
                                   FpgaEngineConfig config)
    : interest_(std::move(interest)),
      hazard_(std::move(hazard)),
      config_(config) {
  interest_.validate();
  hazard_.validate();
  CDSFLOW_EXPECT(config_.vector_lanes >= 1,
                 "vectorised engine requires >= 1 lane");
}

std::string VectorisedEngine::description() const {
  return "Vectorised dataflow engine (" +
         std::to_string(config_.vector_lanes) +
         " round-robin hazard/interp lanes, free-running)";
}

PricingRun VectorisedEngine::price(
    const std::vector<cds::CdsOption>& options) {
  CDSFLOW_EXPECT(!options.empty(), "price() requires options");
  PricingRun run;

  sim::Simulation sim;
  const auto handles = build_cds_dataflow_graph(
      sim, interest_, hazard_, std::span(options.data(), options.size()),
      config_, GraphVariant::kVectorised);
  const auto sim_result = sim.run();
  run.results = handles.sink->collected();
  CDSFLOW_ASSERT(run.results.size() == options.size(),
                 "vectorised region must produce one spread per option");

  last_run_ = LaneStats{};
  for (const auto* lane : handles.hazard_pool.lanes) {
    last_run_.hazard_lane_busy.push_back(lane->busy_cycles());
  }
  for (const auto* lane : handles.interp_pool.lanes) {
    last_run_.interp_lane_busy.push_back(lane->busy_cycles());
  }
  last_run_.hazard_scheduler_busy =
      handles.hazard_pool.distributor->busy_cycles();
  last_run_.interp_scheduler_busy =
      handles.interp_pool.distributor->busy_cycles();
  last_run_.span = sim_result.end_cycle;
  last_run_.option_latency_cycles = handles.option_latencies();

  run.kernel_cycles =
      sim_result.end_cycle + config_.cost.region_initial_start_cycles;
  run.invocations = 1;
  run.kernel_seconds =
      static_cast<double>(run.kernel_cycles) / config_.clock_hz();
  if (config_.include_transfer) {
    const fpga::Interconnect pcie(config_.interconnect);
    run.transfer_seconds = pcie.transfer_seconds(
        batch_traffic(interest_.size(), options.size()).total());
  }
  run.finalise(options.size());
  return run;
}

}  // namespace cdsflow::engine
