/// \file test_regression.cpp
/// Pinned-value regression guards.
///
/// The simulator is deterministic and the pricing maths is pure, so exact
/// values can be pinned: any unintended change to the numerics (summation
/// order, interpolation, schedule generation) or to the calibrated cost
/// model (II, latency, restart, feed constants) trips these tests. An
/// *intentional* model change must update the pins -- that is the point:
/// calibration drift should never be silent.
///
/// Pins generated from the paper scenario, seed 42, 8 options.

#include <gtest/gtest.h>

#include "cds/pricer.hpp"
#include "engines/registry.hpp"
#include "workload/scenario.hpp"

namespace cdsflow {
namespace {

struct SpreadPin {
  std::int32_t id;
  double spread_bps;
};

// Golden-model spreads on the paper scenario (seed 42): full double
// precision.
constexpr SpreadPin kSpreadPins[] = {
    {0, 164.14440123303959}, {1, 181.39907785955759},
    {2, 175.39776036934504}, {3, 235.23422231758764},
    {4, 185.5925698701331},  {5, 167.905059374232},
    {6, 269.39375063855323}, {7, 176.8015312715969},
};

// Simulated kernel cycles for the same 8-option batch per engine
// generation. These encode the calibrated cost model of DESIGN.md §5.
struct CyclePin {
  const char* engine;
  sim::Cycle cycles;
};
constexpr CyclePin kCyclePins[] = {
    {"xilinx-baseline", 806748},
    {"dataflow", 344988},
    {"dataflow-interoption", 217959},
    {"vectorised", 109505},
};

workload::Scenario pinned_scenario() {
  return workload::paper_scenario(8, 42);
}

TEST(Regression, GoldenSpreadsPinned) {
  const auto scenario = pinned_scenario();
  const cds::ReferencePricer golden(scenario.interest, scenario.hazard);
  ASSERT_EQ(scenario.options.size(), std::size(kSpreadPins));
  for (std::size_t i = 0; i < std::size(kSpreadPins); ++i) {
    EXPECT_EQ(scenario.options[i].id, kSpreadPins[i].id);
    // Bitwise determinism of the pure-fp64 in-order pipeline.
    EXPECT_DOUBLE_EQ(golden.spread_bps(scenario.options[i]),
                     kSpreadPins[i].spread_bps)
        << "option " << i;
  }
}

TEST(Regression, EngineKernelCyclesPinned) {
  const auto scenario = pinned_scenario();
  for (const auto& pin : kCyclePins) {
    auto engine =
        engine::make_engine(pin.engine, scenario.interest, scenario.hazard);
    const auto run = engine->price(scenario.options);
    EXPECT_EQ(run.kernel_cycles, pin.cycles) << pin.engine;
  }
}

TEST(Regression, PinnedCyclesEncodeTheTableIOrdering) {
  // Self-check of the pins themselves: they must tell the paper's story.
  EXPECT_GT(kCyclePins[0].cycles, 2 * kCyclePins[1].cycles);  // ~2.3x
  EXPECT_GT(kCyclePins[1].cycles,
            static_cast<sim::Cycle>(1.5 * kCyclePins[2].cycles));
  EXPECT_GT(kCyclePins[2].cycles,
            static_cast<sim::Cycle>(1.9 * kCyclePins[3].cycles));
}

TEST(Regression, WorkloadGenerationPinned) {
  // The workload generator feeding every bench must stay stable too.
  const auto scenario = pinned_scenario();
  EXPECT_DOUBLE_EQ(scenario.options[0].maturity_years, 1.7547667395389395);
  EXPECT_DOUBLE_EQ(scenario.options[0].recovery_rate, 0.47201736441125575);
  EXPECT_DOUBLE_EQ(scenario.interest.value(0), 0.015794028181275517);
  EXPECT_DOUBLE_EQ(scenario.hazard.value(511), 0.045291199529064172);
}

}  // namespace
}  // namespace cdsflow
