/// \file bench_cpu_vector.cpp
/// SIMD vector kernel: single-thread throughput of the vector-lane batch
/// kernel (cds/vector_kernel.hpp) against the scalar batch kernel it
/// dispatches away from, reported as JSON for the cross-PR perf trajectory.
///
/// Both kernels share the dedup + grid arena, so the delta isolates what the
/// lanes buy: the tabulation exp/search math W points at a time and the
/// branch-free combine W options at a time. The same two book styles as
/// bench_batch_pricer bracket the mix:
///   - "continuous": ~no schedule reuse, cost is tabulation-dominated --
///     this is where the lanes bite, and the headline
///     `single_thread_speedup` (acceptance bar: >= 2x on a SIMD host) is
///     measured on this book;
///   - "standard-tenor": 5 grids for the whole book, cost is
///     combine-dominated.
/// A risk section repeats the comparison for the batched Greeks pass.
///
/// Parity is asserted, not just reported: every vector spread must match the
/// scalar kernel within VectorKernelContract::kSpreadRelTol or the bench
/// exits 1 (the documented contract, enforced wherever the kernel runs). A
/// sub-2x speedup only warns -- on a host without SIMD lanes the vector
/// kernel *is* the scalar kernel and the ratio sits at ~1.0 by design.
///
/// Usage: bench_cpu_vector [n_options] [knots] [out.json]
///   defaults: 16384 1024 BENCH_cpu_vector.json

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cds/batch_pricer.hpp"
#include "cds/precision.hpp"
#include "cds/vector_kernel.hpp"
#include "common/format.hpp"
#include "common/stats.hpp"
#include "report/table.hpp"
#include "workload/curves.hpp"
#include "workload/options.hpp"

namespace {

using namespace cdsflow;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct BookResult {
  std::string book;
  double scalar_seconds = 0.0;
  double vector_seconds = 0.0;
  double speedup = 0.0;
  double max_rel_vs_scalar = 0.0;
  cds::BatchStats stats;
};

BookResult run_book(const std::string& name, const cds::BatchPricer& scalar,
                    const cds::BatchPricer& vector,
                    const std::vector<cds::CdsOption>& book) {
  BookResult out;
  out.book = name;

  cds::BatchPricer::Workspace ws;
  std::vector<cds::SpreadResult> want(book.size());
  out.scalar_seconds = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    scalar.price(book, want, ws);
    out.scalar_seconds = std::min(out.scalar_seconds, seconds_since(t0));
  }

  std::vector<cds::SpreadResult> got(book.size());
  out.vector_seconds = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    out.stats = vector.price(book, got, ws);
    out.vector_seconds = std::min(out.vector_seconds, seconds_since(t0));
  }

  for (std::size_t i = 0; i < book.size(); ++i) {
    out.max_rel_vs_scalar =
        std::max(out.max_rel_vs_scalar,
                 relative_difference(got[i].spread_bps, want[i].spread_bps));
  }
  out.speedup = out.scalar_seconds / out.vector_seconds;
  return out;
}

/// Best-of-repeats risk pass (spreads + CS01/IR01/Rec01/JTD + 4-bucket
/// ladder) with a warmed workspace.
double time_risk(const cds::BatchPricer& pricer,
                 const std::vector<cds::CdsOption>& book,
                 const cds::BatchRiskConfig& config) {
  cds::BatchPricer::RiskWorkspace ws;
  std::vector<cds::Sensitivities> sens(book.size());
  std::vector<double> ladder(book.size() * (config.ladder_edges.size() - 1));
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    pricer.price_with_sensitivities(book, sens, ladder, ws, config);
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16384;
  const std::size_t knots =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1024;
  const std::string out_path = argc > 3 ? argv[3] : "BENCH_cpu_vector.json";

  const auto interest = workload::paper_interest_curve(knots);
  const auto hazard = workload::paper_hazard_curve(knots);
  const auto level = cds::simd::active_level();
  std::cout << "== SIMD vector kernel vs scalar batch kernel ("
            << cds::simd::to_string(level) << ", " << cds::simd::lanes(level)
            << " lane(s)), " << n_options << " options, " << knots
            << "-knot curves ==\n\n";

  const cds::BatchPricer scalar(interest, hazard);
  const cds::BatchPricer vector(interest, hazard, level);

  workload::PortfolioSpec continuous;
  continuous.count = n_options;
  continuous.seed = 7;
  workload::PortfolioSpec tenor = continuous;
  tenor.maturity_tenor_grid = {1.0, 3.0, 5.0, 7.0, 10.0};

  std::vector<BookResult> results;
  results.push_back(run_book("continuous", scalar, vector,
                             workload::make_portfolio(continuous)));
  results.push_back(run_book("standard-tenor", scalar, vector,
                             workload::make_portfolio(tenor)));

  report::Table table("Single-thread throughput, scalar vs vector kernel");
  table.set_columns({"Book", "Scalar opts/s", "Vector opts/s", "Speedup",
                     "Unique grids", "Max rel vs scalar"});
  bool parity_ok = true;
  for (const auto& r : results) {
    const double n = static_cast<double>(r.stats.options);
    table.add_row({r.book, with_thousands(n / r.scalar_seconds, 0),
                   with_thousands(n / r.vector_seconds, 0),
                   fixed(r.speedup, 1) + "x",
                   std::to_string(r.stats.unique_schedules),
                   compact(r.max_rel_vs_scalar)});
    parity_ok = parity_ok &&
                r.max_rel_vs_scalar <=
                    cds::VectorKernelContract::kSpreadRelTol;
  }
  std::cout << table.render_text() << '\n';

  // Batched Greeks: the risk pass re-tabulates a scenario column per bump,
  // so the lanes pay off again. Smaller book keeps the bench quick.
  workload::PortfolioSpec risk_spec = continuous;
  risk_spec.count = std::min<std::size_t>(n_options, 4096);
  const auto risk_book = workload::make_portfolio(risk_spec);
  cds::BatchRiskConfig risk_config;
  risk_config.ladder_edges = {1.0, 3.0, 5.0, 7.0, 10.0};
  const double risk_scalar = time_risk(scalar, risk_book, risk_config);
  const double risk_vector = time_risk(vector, risk_book, risk_config);
  const double risk_speedup = risk_scalar / risk_vector;
  std::cout << "risk pass (" << risk_book.size()
            << " options, 4-bucket ladder): "
            << with_thousands(risk_book.size() / risk_scalar, 0) << " -> "
            << with_thousands(risk_book.size() / risk_vector, 0)
            << " options/s (" << fixed(risk_speedup, 1) << "x)\n";

  // Headline: the tabulation-dominated continuous book, where the lane win
  // lives (the acceptance bar for the vector kernel).
  const double headline = results.front().speedup;

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"cpu_vector\",\n"
       << "  \"n_options\": " << n_options << ",\n"
       << "  \"curve_knots\": " << knots << ",\n"
       << "  \"simd_level\": \"" << cds::simd::to_string(level) << "\",\n"
       << "  \"lanes\": " << cds::simd::lanes(level) << ",\n"
       << "  \"single_thread_speedup\": " << headline << ",\n"
       << "  \"risk_speedup\": " << risk_speedup << ",\n"
       << "  \"spread_rel_tol\": "
       << cds::VectorKernelContract::kSpreadRelTol << ",\n"
       << "  \"parity_within_contract\": " << (parity_ok ? "true" : "false")
       << ",\n"
       << "  \"books\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    json << (i == 0 ? "" : ",") << "\n    {\"book\": \"" << r.book << "\""
         << ", \"scalar_kernel_seconds\": " << r.scalar_seconds
         << ", \"vector_seconds\": " << r.vector_seconds
         << ", \"speedup\": " << r.speedup
         << ", \"max_rel_vs_scalar\": " << r.max_rel_vs_scalar
         << ", \"unique_schedules\": " << r.stats.unique_schedules << "}";
  }
  json << "\n  ]\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  std::cout << "JSON written to " << out_path << '\n';

  if (!parity_ok) {
    std::cerr << "FAIL: vector kernel diverged from the scalar kernel "
                 "beyond VectorKernelContract::kSpreadRelTol\n";
    return 1;
  }
  if (level != cds::simd::Level::kScalar && headline < 2.0) {
    std::cerr << "warning: single-thread vector speedup " << fixed(headline, 2)
              << "x below the 2x acceptance bar on this host/size\n";
  }
  return 0;
}
