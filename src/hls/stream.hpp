/// \file stream.hpp
/// HLS-style streams.
///
/// An hls::stream<T> synthesises to a FIFO whose default depth in Vitis HLS
/// is 2; cdsflow::hls::Stream is the same thing on the simulator substrate.
/// Engines widen critical streams explicitly, exactly as an HLS programmer
/// would with `#pragma HLS STREAM depth=N`.

#pragma once

#include <string>

#include "sim/channel.hpp"
#include "sim/simulation.hpp"

namespace cdsflow::hls {

/// Default FIFO depth Vitis HLS assigns to an hls::stream.
inline constexpr std::size_t kDefaultStreamDepth = 2;

template <typename T>
using Stream = sim::Channel<T>;

/// Creates a stream owned by `sim` with the HLS default depth.
template <typename T>
Stream<T>& make_stream(sim::Simulation& sim, std::string name,
                       std::size_t depth = kDefaultStreamDepth) {
  return sim.make_channel<T>(std::move(name), depth);
}

}  // namespace cdsflow::hls
