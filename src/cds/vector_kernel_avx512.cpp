/// \file vector_kernel_avx512.cpp
/// AVX-512 (8 x double lanes) instantiation of the vector kernels. Compiled
/// with -mavx512f -mavx512dq -mavx512vl -mfma (CMakeLists.txt
/// set_source_files_properties); empty when the build disabled SIMD or the
/// compiler lacks the flags.

#include "cds/vector_kernel_arch.hpp"

#if defined(CDSFLOW_HAVE_AVX512)
#define CDSFLOW_SIMD_NS detail_avx512
#define CDSFLOW_SIMD_WIDTH 8
#include "cds/vector_kernel_impl.hpp"
#endif
