/// \file bench_ext_cluster.cpp
/// Extension: multi-card scaling -- the HPC rung above the paper's single
/// U280 (its motivating context is batch processing on HPC machines).
///
/// Part 1 sweeps 1..8 modelled cards of 5 vectorised engines each
/// (engine::ClusterEngine, simulated clock) and reports throughput,
/// scaling efficiency, modelled power and efficiency -- projecting where
/// the single-card conclusions go at rack scale.
///
/// Part 2 grounds the model: the same shard plan is executed for real on a
/// multi-process socket cluster (src/cluster) whose workers each run one
/// modelled card ("multi-5"), and the modelled card throughput is compared
/// against the socket cluster's modelled makespan on identical shards. The
/// two paths must also merge bit-identically -- the ClusterEngine chunks a
/// book exactly like the coordinator's contiguous shard plan, so any row
/// divergence is a determinism bug, and the exit code enforces it.
///
/// Usage: bench_ext_cluster [n_options]

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cluster/coordinator.hpp"
#include "cluster/worker.hpp"
#include "common/format.hpp"
#include "engines/cluster.hpp"
#include "fpga/power.hpp"
#include "net/server.hpp"
#include "report/table.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace cdsflow;

/// One in-process socket worker running a single modelled card.
struct CardWorker {
  std::string path;
  std::unique_ptr<cluster::ClusterWorker> worker;
  std::unique_ptr<net::Server> server;
  std::thread thread;

  CardWorker(const workload::Scenario& scenario, int index) {
    path = "/tmp/cdsflow-ext-cluster-" + std::to_string(::getpid()) + "-" +
           std::to_string(index) + ".sock";
    cluster::WorkerConfig config;
    config.runtime.engine = "multi-5";
    config.runtime.workers = 1;
    // Pinned fit: plans are by card count here, not by probe noise.
    config.fit.options_per_second = 1e6;
    config.fit.setup_seconds = 1e-4;
    config.fit.watts = fpga::FpgaPowerModel{}.watts(5);
    worker = std::make_unique<cluster::ClusterWorker>(
        scenario.interest, scenario.hazard, std::move(config));
    net::ServerConfig server_config;
    server_config.unix_path = path;
    server = std::make_unique<net::Server>(server_config);
    thread = std::thread([this] { server->run(*worker); });
  }

  ~CardWorker() {
    server->stop();
    thread.join();
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2048;

  const auto scenario = workload::paper_scenario(n_options);
  const fpga::FpgaPowerModel card_power;

  std::cout << "== Extension: multi-card cluster scaling ==\n"
            << n_options << " options, 5 vectorised engines per card\n\n";

  report::Table table("Cluster scaling (cards x 5 engines, modelled)");
  table.set_columns({"Cards", "Options/s", "Scaling", "Efficiency",
                     "Watts (cards)", "Opts/Watt"});
  double base = 0.0;
  std::vector<cds::SpreadResult> modelled_rows;
  double modelled_2card_ops = 0.0;
  for (const unsigned cards : {1u, 2u, 4u, 8u}) {
    engine::ClusterConfig cfg;
    cfg.n_cards = cards;
    cfg.per_card.n_engines = 5;
    engine::ClusterEngine engine(scenario.interest, scenario.hazard, cfg);
    const auto run = engine.price(scenario.options);
    if (cards == 1) base = run.options_per_second;
    if (cards == 2) {
      modelled_rows = run.results;
      modelled_2card_ops = run.options_per_second;
    }
    const double watts =
        card_power.watts(5) * static_cast<double>(cards);
    table.add_row({std::to_string(cards),
                   with_thousands(run.options_per_second, 0),
                   fixed(run.options_per_second / base, 2) + "x",
                   fixed(100.0 * run.options_per_second / base / cards, 1) +
                       "%",
                   fixed(watts, 1),
                   fixed(run.options_per_second / watts, 0)});
  }
  std::cout << table.render_text()
            << "\ncards scale near-linearly (independent PCIe links; only "
               "host fan-out and chunk imbalance detract), so the paper's "
               "efficiency conclusions carry to rack scale.\n\n";

  // --- Part 2: the 2-card row, executed for real over sockets ------------
  // Two worker processes (in-process servers here; scripts/cluster_smoke.sh
  // runs the same topology with real processes), each one modelled card,
  // shard_size = ceil(n/2) so the coordinator cuts the book into the same
  // two contiguous chunks the modelled ClusterEngine uses.
  std::cout << "== Modelled vs real multi-process (2 cards) ==\n\n";
  CardWorker card0(scenario, 0);
  CardWorker card1(scenario, 1);
  cluster::CoordinatorConfig config;
  for (const auto* path : {&card0.path, &card1.path}) {
    cluster::NodeSpec spec;
    spec.unix_path = *path;
    spec.connect_timeout_seconds = 10.0;
    spec.measure_latency = false;
    config.nodes.push_back(spec);
  }
  config.shard_size = (n_options + 1) / 2;
  cluster::ClusterCoordinator coordinator(config);
  const auto real = coordinator.price(scenario.options);

  bool identical = real.run.results.size() == modelled_rows.size();
  for (std::size_t i = 0; identical && i < modelled_rows.size(); ++i) {
    identical = real.run.results[i].id == modelled_rows[i].id &&
                real.run.results[i].spread_bps == modelled_rows[i].spread_bps;
  }

  report::Table compare("One book, two cards: modelled card vs socket "
                        "cluster");
  compare.set_columns({"Path", "Shards", "Opts/s (modelled)",
                       "Opts/s (wall)", "Identical"});
  compare.add_row({"ClusterEngine (simulated)", "2",
                   with_thousands(modelled_2card_ops, 0), "-", "-"});
  compare.add_row({"socket cluster (2 proc)",
                   std::to_string(real.shards.size()),
                   with_thousands(real.run.options_per_second, 0),
                   with_thousands(real.wall_options_per_second, 0),
                   identical ? "yes" : "NO"});
  std::cout << compare.render_text()
            << "\nmodelled/real modelled-throughput ratio: "
            << fixed(modelled_2card_ops / real.run.options_per_second, 2)
            << "x (the card model clocks simulated FPGA time; the socket "
               "path charges the measured engine plus the link model)\n"
            << "bit-identity across the two paths: "
            << (identical ? "yes" : "NO") << '\n';
  return identical ? 0 : 1;
}
