/// \file sweep_pricer.hpp
/// Scenario-major sweep pricing: one deduplicated book under N scenarios.
///
/// Every fast path so far scales the *options* axis; production credit risk
/// scales the *scenario* axis -- stress grids, historical replay,
/// Monte-Carlo hazard paths (the streaming-Greeks observation of
/// arXiv:2212.13977: all repricings differentiate the same tabulated
/// intermediates, so the bumps belong on the grids, not the options). The
/// naive loop re-runs the whole `BatchPricer` per scenario:
///
///     per scenario: curve ctor + prefix build + schedule dedup
///                   + D column + Q column + leg reduction + N_opt combines
///
/// The sweep generalises the PR 3 risk trick to arbitrary scenario sets.
/// Everything a scenario cannot move is hoisted out of the loop, per kind:
///
///   kHazard  shared: schedules, dedup, D column, segment brackets
///            per scenario: Q column only -- and because every scenario
///            shares the knot *times*, even the Q column needs no searches:
///            the segment index and dt of every schedule point are
///            precomputed once, and `simd::sweep_survival_group` tabulates
///            `lanes(level)` scenarios per vector register (scenarios in
///            the lanes -- the scenario axis is embarrassingly data-
///            parallel, unlike the prefix chain within one scenario).
///   kRate    shared: schedules, dedup, Q column; per scenario: D column.
///   kJoint   shared: schedules, dedup, segment precompute; per scenario:
///            both columns.
///
/// Per scenario the per-grid leg sums reduce in the scalar reference order
/// (detail::reduce_leg_sums) and the per-option combine collapses to O(1)
/// per *grid* for the min/max aggregates: the combine expression
///     spread = kBasisPointsPerUnit * ((1 - recovery) * payoff_g) / annuity_g
/// is monotone (weakly decreasing) in the recovery rate under IEEE
/// round-to-nearest -- payoff_g >= 0 and annuity_g > 0, and each step
/// (exact 1-r subtraction, multiply and divide by non-negative constants)
/// preserves <= -- so the grid's extremal spreads are the exact combine
/// values of its extremal-recovery options. A 4k-option book costs ~10
/// divides per scenario instead of 4096, and the aggregate is *bit-equal*
/// to scanning the full per-option results (min/max are value-based and
/// order-independent).
///
/// Bit-identity contract (tested in tests/test_sweep_pricer.cpp): at every
/// kernel level, per-option results delivered through the sink -- and hence
/// the aggregates -- are bit-identical to the naive per-scenario
/// `BatchPricer` loop at the same level, and invariant under scenario
/// grouping, shard size and worker count. Every per-scenario path evaluates
/// the reference expressions on the shared grids: the hazard group kernel
/// reproduces make_hazard_prefix + integrated_hazard_prefix per lane, the
/// rate/joint paths reuse survival_column / discount_column, and the
/// reductions/combines are the batch kernel's own.

#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "cds/batch_pricer.hpp"
#include "cds/curve.hpp"
#include "cds/hazard.hpp"
#include "cds/types.hpp"
#include "cds/vector_kernel.hpp"

namespace cdsflow::cds {

/// Which curve a scenario set moves; selects the shared column(s).
enum class ScenarioKind {
  kHazard,  ///< hazard values move, D column shared across all scenarios
  kRate,    ///< interest values move, Q column shared across all scenarios
  kJoint,   ///< both move, schedules/brackets/combine still amortised
};

const char* to_string(ScenarioKind kind);

/// Scenario-major view over N scenarios' curve values. Scenarios move knot
/// *values* only: every scenario shares the base curves' knot times (what
/// makes the search-free hazard fast path valid). Row s of each matrix is
/// scenario s's full knot-value vector.
struct ScenarioMatrix {
  ScenarioKind kind = ScenarioKind::kHazard;
  std::size_t count = 0;
  /// count x hazard_knots row-major values; unused (empty) for kRate.
  std::span<const double> hazard_values;
  /// count x interest_knots row-major values; unused (empty) for kHazard.
  std::span<const double> rate_values;
};

/// Per-scenario aggregate over the book's spreads. Min/max are value-based
/// (order-independent), so the sweep's O(grids) evaluation is bit-equal to
/// scanning the naive loop's full per-option results.
struct ScenarioAggregate {
  double min_spread_bps = 0.0;
  double max_spread_bps = 0.0;
};

/// What a sweep cost and how much tabulation the sharing removed.
struct SweepStats {
  std::size_t scenarios = 0;
  std::size_t options = 0;
  std::size_t unique_schedules = 0;
  std::size_t grid_points = 0;
  /// Per-grid curve columns re-tabulated (scenario-moved columns).
  std::size_t retabulated_columns = 0;
  /// Per-grid curve columns served from the shared base grids.
  std::size_t shared_columns = 0;

  /// Fraction of required columns served without re-tabulation: 0.5 for
  /// single-curve scenario kinds (one of D/Q shared), 0 for kJoint.
  double shared_column_rate() const {
    const std::size_t total = retabulated_columns + shared_columns;
    return total == 0 ? 0.0
                      : static_cast<double>(shared_columns) /
                            static_cast<double>(total);
  }

  /// Accumulates a shard's stats (scenario-extensive fields add, book
  /// geometry is identical across shards and carried through).
  void merge(const SweepStats& other);
};

/// Prices one fixed book under many scenarios. Construction runs the batch
/// kernel's passes 1-2 once (schedule dedup + base-grid tabulation) and
/// precomputes the scenario-invariant hazard segment brackets; sweep() then
/// re-tabulates only what each scenario moves.
///
/// The pricer carries internal scratch, so sweep() is NOT const and an
/// instance must not be shared across threads -- the runtime gives each
/// worker lane its own replica, exactly like the batch engines (the
/// replicas produce bit-identical results, so the merge stays
/// deterministic).
class SweepPricer {
 public:
  /// Called once per scenario with its full per-option results (batch
  /// order, ids preserved). The span aliases internal scratch: valid only
  /// during the call. Empty sink skips per-option expansion entirely --
  /// the O(grids)-per-scenario fast path.
  using ResultSink =
      std::function<void(std::size_t scenario, std::span<const SpreadResult>)>;

  /// Copies the curves and the book; builds the base grids at `level`
  /// (clamped to the host, like BatchPricer). Throws cdsflow::Error on an
  /// empty book, invalid options or an unpriceable base grid.
  SweepPricer(TermStructure interest, TermStructure hazard,
              std::span<const CdsOption> options,
              simd::Level level = simd::Level::kScalar);

  const TermStructure& interest() const { return base_.interest(); }
  const TermStructure& hazard() const { return base_.hazard(); }
  simd::Level kernel_level() const { return base_.kernel_level(); }
  std::size_t option_count() const { return options_.size(); }
  /// Dedup accounting of the one-time base-grid build.
  const BatchStats& book_stats() const { return book_stats_; }

  /// Prices scenarios [begin, end) of `scenarios` into
  /// `aggregates[s - begin]`. `aggregates.size()` must equal end - begin;
  /// the half-open range is the runtime's shard axis. Throws cdsflow::Error
  /// on shape mismatches or an unpriceable scenario grid (non-positive
  /// risky annuity -- the same diagnostic, and the same scenarios, as the
  /// naive loop).
  SweepStats sweep(const ScenarioMatrix& scenarios, std::size_t begin,
                   std::size_t end, std::span<ScenarioAggregate> aggregates,
                   const ResultSink& sink = {});

  /// Convenience: the whole scenario set, owning the result vector.
  std::vector<ScenarioAggregate> sweep(const ScenarioMatrix& scenarios);

  /// The comparator's aggregate: a plain in-order min/max scan over full
  /// per-option results (what the naive loop computes per scenario).
  static ScenarioAggregate aggregate_spreads(std::span<const SpreadResult> rs);

 private:
  void finish_scenario(std::size_t s, std::size_t base_index,
                       std::span<const double> discount,
                       std::span<const double> survival,
                       std::span<ScenarioAggregate> aggregates,
                       const ResultSink& sink);

  /// Aggregate + optional sink emission for the scenario whose per-grid
  /// sums are already in scen_annuity_/scen_payoff_.
  void emit_scenario(std::size_t s, std::size_t base_index,
                     std::span<ScenarioAggregate> aggregates,
                     const ResultSink& sink);

  void sweep_hazard(const ScenarioMatrix& m, std::size_t begin,
                    std::size_t end, std::span<ScenarioAggregate> aggregates,
                    const ResultSink& sink);
  void sweep_rate(const ScenarioMatrix& m, std::size_t begin, std::size_t end,
                  std::span<ScenarioAggregate> aggregates,
                  const ResultSink& sink);
  void sweep_joint(const ScenarioMatrix& m, std::size_t begin, std::size_t end,
                   std::span<ScenarioAggregate> aggregates,
                   const ResultSink& sink);

  BatchPricer base_;
  std::vector<CdsOption> options_;
  BatchPricer::Workspace ws_;  ///< base grids, built once
  BatchStats book_stats_;
  std::size_t n_grids_ = 0;
  std::size_t n_knots_ = 0;       ///< hazard knots
  std::size_t active_knots_ = 0;  ///< knots at or before the last schedule
                                  ///< point -- the sweep reads no further

  // Scenario-invariant hazard segment brackets (see sweep_survival_group).
  std::vector<double> knot_dt_;
  std::vector<double> point_dt_;
  std::vector<std::int64_t> base_row_;
  std::vector<std::int64_t> rate_row_;
  std::vector<double> accrual_dt_;  ///< points[i].dt, contiguous for the
                                    ///< leg-sum group kernel

  // Per-grid extremal recovery rates (first pass over the book).
  std::vector<double> rec_min_;
  std::vector<double> rec_max_;

  // Reused per-sweep scratch.
  std::vector<double> rates_T_;   ///< lane-transposed scenario rates
  std::vector<double> lambda_T_;  ///< lane-transposed prefix lambdas
  std::vector<double> q_T_;       ///< lane-transposed survival columns
  std::vector<double> annuity_T_;  ///< lane-transposed per-grid annuities
  std::vector<double> payoff_T_;   ///< lane-transposed per-grid payoffs
  std::vector<double> q_col_;     ///< one scenario's survival column
  std::vector<double> d_col_;     ///< one scenario's discount column
  std::vector<double> scen_annuity_;
  std::vector<double> scen_payoff_;
  std::vector<double> rate_vals_;  ///< one scenario's interest values
  std::vector<SpreadResult> results_;
  HazardPrefix scen_prefix_;  ///< kJoint per-scenario prefix (reused)
};

}  // namespace cdsflow::cds
