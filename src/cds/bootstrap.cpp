#include "cds/bootstrap.hpp"

#include <cmath>

#include "cds/legs.hpp"
#include "common/error.hpp"
#include "common/solver.hpp"

namespace cdsflow::cds {

namespace {

/// Builds the working curve: already-solved segment rates plus a trial rate
/// on the newest segment. Knot i sits at quote tenor i (piecewise-constant
/// hazard applies on (tenor_{i-1}, tenor_i], matching integrated_hazard's
/// convention).
TermStructure working_curve(const std::vector<SpreadQuote>& quotes,
                            const std::vector<double>& solved,
                            double trial, std::size_t segment) {
  std::vector<double> times, values;
  times.reserve(segment + 1);
  values.reserve(segment + 1);
  for (std::size_t i = 0; i < segment; ++i) {
    times.push_back(quotes[i].tenor_years);
    values.push_back(solved[i]);
  }
  times.push_back(quotes[segment].tenor_years);
  values.push_back(trial);
  return TermStructure(std::move(times), std::move(values));
}

}  // namespace

BootstrapResult bootstrap_hazard_curve(const TermStructure& interest,
                                       const std::vector<SpreadQuote>& quotes,
                                       BootstrapOptions options) {
  interest.validate();
  CDSFLOW_EXPECT(!quotes.empty(), "bootstrap requires at least one quote");
  for (std::size_t i = 0; i < quotes.size(); ++i) {
    CDSFLOW_EXPECT(quotes[i].tenor_years > 0.0,
                   "quote tenors must be positive");
    CDSFLOW_EXPECT(quotes[i].spread_bps > 0.0,
                   "quote spreads must be positive");
    if (i > 0) {
      CDSFLOW_EXPECT(quotes[i].tenor_years > quotes[i - 1].tenor_years,
                     "quote tenors must be strictly increasing");
    }
  }
  CDSFLOW_EXPECT(options.hazard_min > 0.0 &&
                     options.hazard_max > options.hazard_min,
                 "hazard search bracket is invalid");

  BootstrapResult result;
  std::vector<double> solved;
  solved.reserve(quotes.size());

  for (std::size_t segment = 0; segment < quotes.size(); ++segment) {
    const CdsOption contract{
        .id = static_cast<std::int32_t>(segment),
        .maturity_years = quotes[segment].tenor_years,
        .payment_frequency = options.payment_frequency,
        .recovery_rate = options.recovery_rate};
    const double target = quotes[segment].spread_bps;

    auto objective = [&](double h) {
      const TermStructure hazard =
          working_curve(quotes, solved, h, segment);
      return price_breakdown(interest, hazard, contract).spread_bps - target;
    };

    RootFindOptions ro;
    ro.f_tolerance = options.tolerance_bps;
    const RootFindResult root = find_root_brent(
        objective, options.hazard_min, options.hazard_max, ro);
    CDSFLOW_EXPECT(root.converged,
                   "bootstrap failed to converge at tenor " +
                       std::to_string(quotes[segment].tenor_years) +
                       "y -- quotes may be arbitrage-inconsistent");
    solved.push_back(root.root);
    result.total_iterations += root.iterations;
    result.max_error_bps =
        std::max(result.max_error_bps, std::fabs(root.residual));
  }

  result.hazard =
      working_curve(quotes, solved, solved.back(), quotes.size() - 1);
  return result;
}

}  // namespace cdsflow::cds
