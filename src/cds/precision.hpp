/// \file precision.hpp
/// Reduced-precision pricing -- the paper's future-work direction:
/// "further exploration around reduced precision, especially within the
/// context of the future Xilinx Versal ACAP with AI engines for
/// accelerating single precision floating point and fixed-point
/// arithmetic, would be very interesting." (Sec. V)
///
/// This module implements the numerical half of that study: the complete
/// CDS model evaluated in IEEE single precision (and a mixed mode that
/// keeps only the accumulations in double), so the accuracy cost of
/// dropping precision can be quantified in basis points against the fp64
/// golden model. The hardware half -- what single precision buys on the
/// FPGA -- is modelled by fpga::ReducedPrecisionModel.

#pragma once

#include <vector>

#include "cds/curve.hpp"
#include "cds/schedule.hpp"
#include "cds/types.hpp"

namespace cdsflow::cds {

enum class Precision {
  kDouble,        ///< fp64 everywhere (the golden model)
  kSingle,        ///< fp32 everywhere
  kMixed,         ///< fp32 arithmetic, fp64 accumulators (a common FPGA
                  ///< compromise: cheap multipliers, safe sums)
};

const char* to_string(Precision precision);

/// Prices one option with the requested arithmetic. kDouble reproduces the
/// golden model bit-for-bit.
double spread_bps_with_precision(const TermStructure& interest,
                                 const TermStructure& hazard,
                                 const CdsOption& option,
                                 Precision precision);

/// Same with a caller-owned schedule buffer, reusable across a book loop.
double spread_bps_with_precision(const TermStructure& interest,
                                 const TermStructure& hazard,
                                 const CdsOption& option, Precision precision,
                                 std::vector<TimePoint>& scratch);

/// Error summary of a reduced-precision pricer over a book.
struct PrecisionErrorReport {
  Precision precision = Precision::kSingle;
  double max_abs_error_bps = 0.0;
  double mean_abs_error_bps = 0.0;
  double max_rel_error = 0.0;
};

PrecisionErrorReport evaluate_precision(const TermStructure& interest,
                                        const TermStructure& hazard,
                                        const std::vector<CdsOption>& book,
                                        Precision precision);

}  // namespace cdsflow::cds
