/// \file cpu_engine.hpp
/// The paper's CPU comparator: "a bespoke version of the engine in C++ with
/// OpenMP for multi-threading" on a 24-core Xeon Platinum 8260M.
///
/// This engine *really executes*: it prices with the reference math and
/// reports measured wall-clock time. Threading uses OpenMP when the
/// toolchain provides it (as in the paper) and falls back to std::thread
/// otherwise. There are no dependencies between options, so the parallel
/// schedule is a simple partition -- the paper observes this workload scales
/// poorly anyway (~9x on 24 cores), being memory-bound on the curve scans.

#pragma once

#include "cds/curve.hpp"
#include "cds/pricer.hpp"
#include "engines/engine.hpp"

namespace cdsflow::engine {

struct CpuEngineConfig {
  /// Worker threads; 0 selects std::thread::hardware_concurrency().
  unsigned threads = 1;
};

class CpuEngine final : public Engine {
 public:
  CpuEngine(cds::TermStructure interest, cds::TermStructure hazard,
            CpuEngineConfig config = {});

  std::string name() const override;
  std::string description() const override;

  PricingRun price(const std::vector<cds::CdsOption>& options) override;

  unsigned threads() const { return threads_; }

  /// True when built with OpenMP (the paper's configuration).
  static bool uses_openmp();

 private:
  cds::ReferencePricer pricer_;
  unsigned threads_;
};

}  // namespace cdsflow::engine
