#include "sim/process.hpp"

// Process is header-only today; this translation unit anchors the vtable.

namespace cdsflow::sim {}
