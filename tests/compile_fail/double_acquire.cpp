// Seeded violation: acquiring the same mutex twice in one scope (a
// self-deadlock with std::mutex). Clang must reject this under
// -Werror=thread-safety ("acquiring mutex 'mu_' that is already held");
// the compile_fail_double_acquire ctest entry is WILL_FAIL on that.
// Under GCC the annotations are no-ops and this is ordinary valid C++
// (compiled only, never run -- executing it would deadlock).

#include "common/thread_annotations.hpp"

namespace {

class Register {
 public:
  void set(long value) {
    cdsflow::MutexLock outer(mu_);
    cdsflow::MutexLock inner(mu_);  // re-acquire: the seeded violation
    value_ = value;
  }

 private:
  cdsflow::Mutex mu_;
  long value_ CDSFLOW_GUARDED_BY(mu_) = 0;
};

}  // namespace

void cf_double_acquire_probe() {
  Register reg;
  reg.set(42);
}
