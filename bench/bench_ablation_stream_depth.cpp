/// \file bench_ablation_stream_depth.cpp
/// Ablation: FIFO depth of the per-time-point streams.
///
/// HLS gives every stream depth 2 by default; deeper streams decouple
/// producer/consumer rate mismatches at BRAM cost. For this engine the
/// bottleneck is a single slow stage (the interpolation scan), so depth
/// barely moves throughput -- worth knowing before spending BRAM. Stall
/// counters from the channel stats show where back-pressure actually sits.
///
/// Usage: bench_ablation_stream_depth [n_options]

#include <cstdlib>
#include <iostream>

#include "common/format.hpp"
#include "engines/interoption_engine.hpp"
#include "report/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 128;

  const auto scenario = workload::paper_scenario(n_options);

  std::cout << "== Ablation: per-time-point stream depth (HLS default: 2) =="
            << "\n"
            << n_options << " options, free-running engine\n\n";

  report::Table table("Throughput vs stream depth");
  table.set_columns({"Depth", "Options/s", "Kernel cycles"});
  for (const std::size_t depth : {1, 2, 4, 8, 16, 64}) {
    engine::FpgaEngineConfig cfg;
    cfg.tp_stream_depth = depth;
    engine::InterOptionEngine engine(scenario.interest, scenario.hazard, cfg);
    const auto run = engine.price(scenario.options);
    table.add_row({std::to_string(depth),
                   with_thousands(run.options_per_second, 2),
                   with_thousands(double(run.kernel_cycles), 0)});
  }
  std::cout << table.render_text()
            << "\nthroughput is insensitive to depth: one stage (the "
               "interpolation scan) dominates, so FIFOs never need to absorb "
               "long bursts. The BRAM is better spent on curve replicas.\n";
  return 0;
}
