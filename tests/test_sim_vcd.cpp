/// \file test_sim_vcd.cpp
/// Unit tests for the VCD trace exporter: header structure, edge emission,
/// adjacent-interval merging, identifier scheme, and an end-to-end dump of
/// an engine run.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "engines/interoption_engine.hpp"
#include "sim/vcd.hpp"
#include "workload/scenario.hpp"

namespace cdsflow::sim {
namespace {

Trace two_track_trace() {
  Trace t;
  const auto a = t.add_track("stage_a");
  const auto b = t.add_track("stage_b");
  t.record(a, 0, 10);
  t.record(b, 5, 15);
  return t;
}

std::string dump(const Trace& t, VcdOptions o = {}) {
  std::ostringstream os;
  write_vcd(os, t, std::move(o));
  return os.str();
}

TEST(Vcd, HeaderStructure) {
  const std::string out = dump(two_track_trace());
  EXPECT_NE(out.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(out.find("$scope module cdsflow $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 ! stage_a $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 \" stage_b $end"), std::string::npos);
  EXPECT_NE(out.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(out.find("$dumpvars"), std::string::npos);
}

TEST(Vcd, EdgesAtCorrectTimes) {
  const std::string out = dump(two_track_trace());
  // stage_a rises at 0, stage_b at 5, stage_a falls at 10, stage_b at 15.
  EXPECT_NE(out.find("#0\n1!"), std::string::npos);
  EXPECT_NE(out.find("#5\n1\""), std::string::npos);
  EXPECT_NE(out.find("#10\n0!"), std::string::npos);
  EXPECT_NE(out.find("#15\n0\""), std::string::npos);
}

TEST(Vcd, AdjacentIntervalsMergeWithoutGlitch) {
  Trace t;
  const auto a = t.add_track("a");
  t.record(a, 0, 5);
  t.record(a, 5, 9);  // back-to-back: no 0-then-1 glitch at #5
  const std::string out = dump(t);
  EXPECT_EQ(out.find("#5\n0!"), std::string::npos);
  EXPECT_NE(out.find("#9\n0!"), std::string::npos);
}

TEST(Vcd, CommentAndModuleOptions) {
  VcdOptions o;
  o.module_name = "engine0";
  o.comment = "vectorised, 12 options";
  const std::string out = dump(two_track_trace(), o);
  EXPECT_NE(out.find("$scope module engine0 $end"), std::string::npos);
  EXPECT_NE(out.find("vectorised, 12 options"), std::string::npos);
}

TEST(Vcd, SanitisesSignalNames) {
  Trace t;
  const auto a = t.add_track("hazard lane 0");
  t.record(a, 0, 1);
  const std::string out = dump(t);
  EXPECT_NE(out.find("hazard_lane_0"), std::string::npos);
}

TEST(Vcd, IdentifiersStayPrintableForManyTracks) {
  Trace t;
  for (int i = 0; i < 200; ++i) {
    const auto track = t.add_track("s" + std::to_string(i));
    t.record(track, static_cast<Cycle>(i), static_cast<Cycle>(i + 1));
  }
  const std::string out = dump(t);
  for (const char c : out) {
    EXPECT_TRUE(c == '\n' || (c >= ' ' && c <= '~')) << int(c);
  }
}

TEST(Vcd, RejectsEmptyTrace) {
  Trace t;
  std::ostringstream os;
  EXPECT_THROW(write_vcd(os, t), Error);
}

TEST(Vcd, FileWriterRoundTrips) {
  const auto path =
      (std::filesystem::temp_directory_path() / "cdsflow_test.vcd").string();
  write_vcd_file(path, two_track_trace());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("$enddefinitions"), std::string::npos);
  std::filesystem::remove(path);
  EXPECT_THROW(write_vcd_file("/nonexistent/x.vcd", two_track_trace()),
               Error);
}

TEST(Vcd, EngineRunExportsCleanly) {
  const auto scenario = workload::smoke_scenario(6, 3);
  Trace trace;
  engine::FpgaEngineConfig cfg;
  cfg.trace = &trace;
  engine::InterOptionEngine engine(scenario.interest, scenario.hazard, cfg);
  engine.price(scenario.options);
  const std::string out = dump(trace);
  // Every stage appears as a signal and the dump ends at the trace span.
  EXPECT_NE(out.find("rate_interp"), std::string::npos);
  EXPECT_NE(out.find("spread_combine"), std::string::npos);
  EXPECT_NE(out.find("#" + std::to_string(trace.span())),
            std::string::npos);
}

}  // namespace
}  // namespace cdsflow::sim
