#include "hls/dataflow.hpp"

#include "common/error.hpp"

namespace cdsflow::hls {

const char* to_string(ExecutionPolicy policy) {
  switch (policy) {
    case ExecutionPolicy::kSequentialLoops:
      return "sequential-loops";
    case ExecutionPolicy::kRestartPerOption:
      return "restart-per-option";
    case ExecutionPolicy::kFreeRunning:
      return "free-running";
  }
  return "unknown";
}

RegionRunner::RegionRunner(ExecutionPolicy policy, RegionOverheads overheads)
    : policy_(policy), overheads_(overheads) {}

RegionRunResult RegionRunner::run(
    std::uint64_t work_items,
    const std::function<sim::Cycle(std::uint64_t)>& build_and_run) const {
  CDSFLOW_EXPECT(build_and_run != nullptr, "RegionRunner requires a builder");
  RegionRunResult result;
  switch (policy_) {
    case ExecutionPolicy::kFreeRunning: {
      CDSFLOW_EXPECT(work_items == 1,
                     "free-running regions run the whole batch as one item");
      result.total_cycles =
          overheads_.initial_start_cycles + build_and_run(0);
      result.invocations = 1;
      break;
    }
    case ExecutionPolicy::kRestartPerOption:
    case ExecutionPolicy::kSequentialLoops: {
      // Both legacy policies invoke the kernel once per option; the region
      // fully drains in between and each invocation after the first pays
      // the restart handshake.
      result.total_cycles = overheads_.initial_start_cycles;
      for (std::uint64_t i = 0; i < work_items; ++i) {
        if (i != 0) result.total_cycles += overheads_.restart_cycles;
        result.total_cycles += build_and_run(i);
      }
      result.invocations = work_items;
      break;
    }
  }
  return result;
}

}  // namespace cdsflow::hls
