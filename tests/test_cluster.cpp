/// \file test_cluster.cpp
/// Unit tests for cluster-level (multi-card) scaling.

#include <gtest/gtest.h>

#include <set>

#include "cds/pricer.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "engines/cluster.hpp"
#include "workload/scenario.hpp"

namespace cdsflow::engine {
namespace {

struct ClusterFixture : ::testing::Test {
  workload::Scenario scenario = workload::paper_scenario(120, 11);

  ClusterConfig config(unsigned cards, unsigned engines_per_card = 2) {
    ClusterConfig cfg;
    cfg.n_cards = cards;
    cfg.per_card.n_engines = engines_per_card;
    return cfg;
  }
};

TEST_F(ClusterFixture, MatchesGoldenModel) {
  ClusterEngine engine(scenario.interest, scenario.hazard, config(3));
  const auto run = engine.price(scenario.options);
  const cds::ReferencePricer golden(scenario.interest, scenario.hazard);
  ASSERT_EQ(run.results.size(), scenario.options.size());
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    EXPECT_LT(relative_difference(run.results[i].spread_bps,
                                  golden.spread_bps(scenario.options[i])),
              1e-9);
  }
}

TEST_F(ClusterFixture, CoversEveryOptionExactlyOnce) {
  ClusterEngine engine(scenario.interest, scenario.hazard, config(4));
  const auto run = engine.price(scenario.options);
  std::set<std::int32_t> ids;
  for (const auto& r : run.results) ids.insert(r.id);
  EXPECT_EQ(ids.size(), scenario.options.size());
}

TEST_F(ClusterFixture, CardsScaleNearLinearly) {
  // A book large enough to amortise per-chunk pipeline fills (small books
  // under-utilise 4 cards x 2 engines).
  const auto big = workload::paper_scenario(320, 12);
  ClusterEngine one(big.interest, big.hazard, config(1));
  ClusterEngine four(big.interest, big.hazard, config(4));
  const auto r1 = one.price(big.options);
  const auto r4 = four.price(big.options);
  const double speedup = r1.total_seconds / r4.total_seconds;
  EXPECT_GT(speedup, 2.8);  // 4 cards minus fan-out + chunk imbalance
  EXPECT_LT(speedup, 4.0);  // but never super-linear
}

TEST_F(ClusterFixture, FanoutCostChargedPerExtraCard) {
  ClusterConfig cheap = config(3);
  cheap.host_fanout_s_per_extra_card = 0.0;
  ClusterConfig costly = config(3);
  costly.host_fanout_s_per_extra_card = 1.0e-3;
  ClusterEngine a(scenario.interest, scenario.hazard, cheap);
  ClusterEngine b(scenario.interest, scenario.hazard, costly);
  const auto ra = a.price(scenario.options);
  const auto rb = b.price(scenario.options);
  EXPECT_NEAR(rb.total_seconds - ra.total_seconds, 2.0e-3, 1e-4);
}

TEST_F(ClusterFixture, NameAndDescription) {
  ClusterEngine engine(scenario.interest, scenario.hazard, config(2, 5));
  EXPECT_EQ(engine.name(), "cluster-2x5");
  EXPECT_EQ(engine.total_engines(), 10u);
  EXPECT_NE(engine.description().find("2 card(s)"), std::string::npos);
}

TEST_F(ClusterFixture, EnforcesPerCardDeviceFit) {
  ClusterConfig cfg = config(2, 6);  // 6 engines per card: does not fit
  cfg.per_card.device = fpga::alveo_u280();
  EXPECT_THROW(ClusterEngine(scenario.interest, scenario.hazard, cfg),
               Error);
}

TEST_F(ClusterFixture, ValidationErrors) {
  EXPECT_THROW(ClusterEngine(scenario.interest, scenario.hazard, config(0)),
               Error);
  ClusterEngine engine(scenario.interest, scenario.hazard, config(8, 5));
  // 120 options across 40 engines is fine; 16 options is not.
  std::vector<cds::CdsOption> tiny(scenario.options.begin(),
                                   scenario.options.begin() + 16);
  EXPECT_THROW(engine.price(tiny), Error);
}

}  // namespace
}  // namespace cdsflow::engine
