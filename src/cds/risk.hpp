/// \file risk.hpp
/// Finite-difference credit risk sensitivities -- the post-pricing workflow
/// the engine exists to accelerate (a desk reprices its book under bumped
/// curves after every batch).
///
/// Conventions:
///   * CS01  -- change in spread (bps) for a +1 bp parallel shift of the
///              hazard curve's rates.
///   * IR01  -- change in spread (bps) for a +1 bp parallel shift of the
///              interest-rate curve.
///   * Rec01 -- change in spread (bps) for a +1% (absolute) recovery bump.
/// All computed by central differences on the golden model; the bucketed
/// ladder bumps one curve segment at a time.

#pragma once

#include <vector>

#include "cds/curve.hpp"
#include "cds/types.hpp"

namespace cdsflow::cds {

struct Sensitivities {
  double spread_bps = 0.0;
  double cs01 = 0.0;   ///< d(spread)/d(hazard), per 1 bp parallel bump
  double ir01 = 0.0;   ///< d(spread)/d(rates), per 1 bp parallel bump
  double rec01 = 0.0;  ///< d(spread)/d(recovery), per +1% recovery
};

/// Returns `curve` with `bump` added to every value (parallel shift).
TermStructure parallel_bump(const TermStructure& curve, double bump);

/// Returns `curve` with `bump` added to values whose times fall in
/// [t_lo, t_hi) (bucket shift).
TermStructure bucket_bump(const TermStructure& curve, double t_lo,
                          double t_hi, double bump);

/// Central-difference sensitivities of one option.
Sensitivities compute_sensitivities(const TermStructure& interest,
                                    const TermStructure& hazard,
                                    const CdsOption& option,
                                    double bump = 1e-4);

/// Bucketed CS01 ladder: spread change per +1 bp hazard bump in each
/// [bucket_edges[i], bucket_edges[i+1]) segment. Returns one value per
/// bucket (edges must be increasing; at least two).
std::vector<double> cs01_ladder(const TermStructure& interest,
                                const TermStructure& hazard,
                                const CdsOption& option,
                                const std::vector<double>& bucket_edges,
                                double bump = 1e-4);

}  // namespace cdsflow::cds
