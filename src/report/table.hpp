/// \file table.hpp
/// Result tables rendered as aligned text, GitHub markdown, or CSV --
/// the benches print the paper's tables through this.

#pragma once

#include <string>
#include <vector>

namespace cdsflow::report {

enum class Align { kLeft, kRight };

class Table {
 public:
  explicit Table(std::string title = {});

  /// Defines the header; call before add_row.
  void set_columns(std::vector<std::string> names,
                   std::vector<Align> aligns = {});

  /// Adds a row; must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Adds a horizontal separator row (text rendering only).
  void add_separator();

  std::size_t row_count() const { return rows_.size(); }
  const std::string& title() const { return title_; }

  std::string render_text() const;
  std::string render_markdown() const;
  std::string render_csv() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::size_t> column_widths() const;

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

}  // namespace cdsflow::report
