/// \file test_cds_hazard.cpp
/// Unit tests for hazard integration and survival probabilities: closed-form
/// checks on flat curves, piecewise cases by hand, Listing-1 summation-order
/// agreement, and the generic lane accumulators.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cds/hazard.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace cdsflow::cds {
namespace {

TermStructure flat_hazard(double h, std::size_t points = 64,
                          double span = 10.0) {
  std::vector<double> times(points), values(points, h);
  for (std::size_t i = 0; i < points; ++i) {
    times[i] = (static_cast<double>(i + 1) / static_cast<double>(points)) * span;
  }
  return TermStructure(std::move(times), std::move(values));
}

TEST(Hazard, FlatCurveIntegratesToHTimesT) {
  const auto hz = flat_hazard(0.03);
  for (const double t : {0.0, 0.7, 2.5, 9.999, 10.0}) {
    EXPECT_NEAR(integrated_hazard(hz, t), 0.03 * t, 1e-12) << "t=" << t;
  }
}

TEST(Hazard, ExtrapolatesLastRateBeyondCurve) {
  const auto hz = flat_hazard(0.03, 64, 10.0);
  EXPECT_NEAR(integrated_hazard(hz, 15.0), 0.03 * 15.0, 1e-12);
}

TEST(Hazard, PiecewiseTwoSegmentByHand) {
  // 2% on (0,1], 6% on (1,2].
  const TermStructure hz({1.0, 2.0}, {0.02, 0.06});
  EXPECT_NEAR(integrated_hazard(hz, 0.5), 0.01, 1e-15);
  EXPECT_NEAR(integrated_hazard(hz, 1.0), 0.02, 1e-15);
  EXPECT_NEAR(integrated_hazard(hz, 1.5), 0.02 + 0.03, 1e-15);
  EXPECT_NEAR(integrated_hazard(hz, 2.0), 0.08, 1e-15);
  EXPECT_NEAR(integrated_hazard(hz, 3.0), 0.08 + 0.06, 1e-15);
}

TEST(Hazard, ElementContributionsSumToIntegral) {
  const TermStructure hz({1.0, 2.0, 5.0}, {0.02, 0.06, 0.01});
  const double t = 3.7;
  double sum = 0.0;
  for (std::size_t j = 0; j < hz.size(); ++j) {
    sum += hazard_element_contribution(hz, j, t);
  }
  EXPECT_NEAR(sum, integrated_hazard(hz, t), 1e-15);
}

TEST(Hazard, IntegralIsMonotoneInT) {
  const TermStructure hz({1.0, 3.0, 6.0, 10.0}, {0.05, 0.01, 0.08, 0.02});
  double prev = -1.0;
  for (double t = 0.0; t < 12.0; t += 0.1) {
    const double v = integrated_hazard(hz, t);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Hazard, NegativeTimeRejected) {
  const auto hz = flat_hazard(0.02);
  EXPECT_THROW(integrated_hazard(hz, -0.1), Error);
  EXPECT_THROW(integrated_hazard_listing1(hz, -0.1), Error);
}

TEST(Hazard, SurvivalMatchesClosedFormOnFlatCurve) {
  const auto hz = flat_hazard(0.04);
  for (const double t : {0.5, 1.0, 5.0, 10.0}) {
    EXPECT_NEAR(survival_probability(hz, t), std::exp(-0.04 * t), 1e-12);
    EXPECT_NEAR(default_probability(hz, t), 1.0 - std::exp(-0.04 * t),
                1e-12);
  }
}

TEST(Hazard, SurvivalBoundsAndMonotonicity) {
  const TermStructure hz({1.0, 4.0, 9.0}, {0.08, 0.02, 0.05});
  double prev = 1.0 + 1e-15;
  for (double t = 0.0; t < 12.0; t += 0.25) {
    const double q = survival_probability(hz, t);
    EXPECT_GT(q, 0.0);
    EXPECT_LE(q, 1.0);
    EXPECT_LE(q, prev);  // non-increasing
    prev = q;
  }
  EXPECT_DOUBLE_EQ(survival_probability(hz, 0.0), 1.0);
}

// --- Listing 1 agreement ------------------------------------------------------

TEST(Listing1, AgreesWithInOrderSummation) {
  Rng rng(5);
  std::vector<double> times, values;
  double t_acc = 0.0;
  for (int i = 0; i < 257; ++i) {  // deliberately not a multiple of 7
    t_acc += rng.uniform(0.01, 0.1);
    times.push_back(t_acc);
    values.push_back(rng.uniform(0.001, 0.2));
  }
  const TermStructure hz(times, values);
  for (double t = 0.0; t < t_acc * 1.1; t += t_acc / 17.0) {
    const double a = integrated_hazard(hz, t);
    const double b = integrated_hazard_listing1(hz, t, 7);
    EXPECT_LT(relative_difference(a, b), 1e-13) << "t=" << t;
  }
}

TEST(Listing1, LaneCountInvariance) {
  const TermStructure hz({1.0, 2.0, 3.0, 4.0, 5.0},
                         {0.01, 0.02, 0.03, 0.04, 0.05});
  const double reference = integrated_hazard(hz, 4.2);
  for (unsigned lanes = 1; lanes <= 11; ++lanes) {
    EXPECT_LT(relative_difference(
                  integrated_hazard_listing1(hz, 4.2, lanes), reference),
              1e-14)
        << "lanes=" << lanes;
  }
}

TEST(Listing1, RejectsZeroLanes) {
  const auto hz = flat_hazard(0.02);
  EXPECT_THROW(integrated_hazard_listing1(hz, 1.0, 0), Error);
}

// --- generic accumulators -------------------------------------------------------

TEST(Accumulate, NaiveSumsExactlyForSmallInts) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(accumulate_naive(xs), 55.0);
}

TEST(Accumulate, PartialLanesMatchNaiveWithinTolerance) {
  Rng rng(7);
  std::vector<double> xs(1024);
  for (auto& x : xs) x = rng.uniform(-1.0, 1.0);
  const double a = accumulate_naive(xs);
  const double b = accumulate_partial_lanes<7>(xs);
  EXPECT_LT(std::fabs(a - b), 1e-11);
}

TEST(Accumulate, PartialLanesHandleUnevenTail) {
  // The case the paper's listing omits "for brevity": length % lanes != 0.
  std::vector<double> xs(1000, 1.0);  // 1000 = 142*7 + 6
  EXPECT_DOUBLE_EQ(accumulate_partial_lanes<7>(xs), 1000.0);
  std::vector<double> xs2(5, 2.0);  // shorter than one chunk
  EXPECT_DOUBLE_EQ(accumulate_partial_lanes<7>(xs2), 10.0);
}

TEST(Accumulate, EmptyInput) {
  EXPECT_DOUBLE_EQ(accumulate_naive({}), 0.0);
  EXPECT_DOUBLE_EQ(accumulate_partial_lanes<7>(std::span<const double>{}),
                   0.0);
}

TEST(Accumulate, DifferentLaneCountsAgree) {
  Rng rng(9);
  std::vector<double> xs(511);
  for (auto& x : xs) x = rng.uniform(0.0, 1.0);
  const double reference = accumulate_naive(xs);
  EXPECT_LT(std::fabs(accumulate_partial_lanes<2>(xs) - reference), 1e-11);
  EXPECT_LT(std::fabs(accumulate_partial_lanes<4>(xs) - reference), 1e-11);
  EXPECT_LT(std::fabs(accumulate_partial_lanes<8>(xs) - reference), 1e-11);
}

}  // namespace
}  // namespace cdsflow::cds
