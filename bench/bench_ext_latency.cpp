/// \file bench_ext_latency.cpp
/// Extension: per-option latency under a live quote feed -- the
/// high-frequency-trading context of the paper's second future-work item
/// (integrating the engine with Xilinx's AAT platform).
///
/// A batch engine is judged by throughput; a trading engine by response
/// latency under load. This bench streams options into the free-running and
/// vectorised engines at increasing arrival rates (fractions of their
/// saturation throughput) and reports p50/p95/p99 latency: flat near the
/// pipeline traversal time while the feed is slower than the bottleneck
/// stage, then the queueing blow-up as the rate approaches saturation.
///
/// Usage: bench_ext_latency [n_options]

#include <cstdlib>
#include <iostream>

#include "common/format.hpp"
#include "engines/interoption_engine.hpp"
#include "engines/vectorised_engine.hpp"
#include "report/table.hpp"
#include "workload/options.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace cdsflow;

template <typename EngineT>
void run_sweep(const workload::Scenario& scenario, const char* name) {
  // Saturation throughput: back-to-back batch run.
  EngineT saturated(scenario.interest, scenario.hazard, {});
  const auto sat_run = saturated.price(scenario.options);
  const double clock = engine::FpgaEngineConfig{}.clock_hz();
  const double sat_rate = static_cast<double>(scenario.options.size()) /
                          (static_cast<double>(sat_run.kernel_cycles));

  report::Table table(std::string(name) + ": latency vs arrival rate");
  table.set_columns({"Arrival rate", "p50 (us)", "p95 (us)", "p99 (us)",
                     "max (us)"});

  const double mean_points =
      static_cast<double>(workload::total_time_points(scenario.options)) /
      static_cast<double>(scenario.options.size());
  for (const double load : {0.25, 0.5, 0.8, 1.0}) {
    engine::FpgaEngineConfig cfg;
    if (load < 1.0) {
      // Inter-arrival gap sized against the measured saturation rate,
      // scaled per option by its schedule length.
      const double mean_gap = 1.0 / (sat_rate * load);
      cfg.option_arrival_pace = [mean_gap, mean_points](
                                    const engine::OptionToken& opt) {
        const double scale =
            static_cast<double>(opt.n_points) / mean_points;
        return static_cast<sim::Cycle>(mean_gap * scale + 0.5);
      };
    }
    EngineT engine(scenario.interest, scenario.hazard, cfg);
    engine.price(scenario.options);
    const auto stats =
        engine::latency_stats(engine.last_run().option_latency_cycles);
    auto us = [clock](double cycles) {
      return fixed(cycles / clock * 1e6, 1);
    };
    table.add_row({fixed(load * 100.0, 0) + "% of saturation",
                   us(stats.p50), us(stats.p95), us(stats.p99),
                   us(stats.max)});
  }
  std::cout << table.render_text() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 192;
  const auto scenario = cdsflow::workload::paper_scenario(n_options);

  std::cout << "== Extension: streaming-quote latency (AAT future work) =="
            << "\n"
            << n_options << " options arriving as a live feed\n\n";
  run_sweep<cdsflow::engine::InterOptionEngine>(scenario,
                                                "free-running engine");
  run_sweep<cdsflow::engine::VectorisedEngine>(scenario,
                                               "vectorised engine");
  std::cout << "below ~80% load the engines answer in tens of microseconds "
               "(pipeline traversal);\nat saturation the batch queue "
               "dominates -- throughput and latency are different design "
               "points.\n";
  return 0;
}
