// Seeded violation: reading a CDSFLOW_GUARDED_BY field without holding its
// mutex. Clang must reject this under -Werror=thread-safety
// ("reading variable 'balance_' requires holding mutex 'mu_'");
// the compile_fail_unguarded_read ctest entry is WILL_FAIL on exactly that.
// Under GCC the annotations are no-ops and this is ordinary valid C++.

#include "common/thread_annotations.hpp"

namespace {

class Account {
 public:
  void deposit(long amount) {
    cdsflow::MutexLock lock(mu_);
    balance_ += amount;
  }

  long peek() const {
    return balance_;  // guarded read, no lock: the seeded violation
  }

 private:
  mutable cdsflow::Mutex mu_;
  long balance_ CDSFLOW_GUARDED_BY(mu_) = 0;
};

}  // namespace

long cf_unguarded_read_probe() {
  Account account;
  account.deposit(1);
  return account.peek();
}
