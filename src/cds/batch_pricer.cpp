#include "cds/batch_pricer.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "cds/legs.hpp"
#include "common/error.hpp"

namespace cdsflow::cds {

namespace detail {

LegSums reduce_leg_sums(std::span<const TimePoint> points,
                        std::span<const double> discount,
                        std::span<const double> survival) {
  LegSums sums;
  double q_prev = 1.0;  // Q(0)
  for (std::size_t i = 0; i < points.size(); ++i) {
    const LegTerms terms =
        leg_terms_from_discount(discount[i], q_prev, survival[i], points[i].dt);
    sums.premium += terms.premium;
    sums.accrual += terms.accrual;
    sums.payoff += terms.payoff;
    q_prev = survival[i];
  }
  return sums;
}

GridSums checked_grid_sums(const LegSums& sums) {
  const double annuity = sums.premium + sums.accrual;
  CDSFLOW_EXPECT(annuity > 0.0,
                 "risky annuity must be positive to quote a spread");
  return {annuity, sums.payoff};
}

GridSums tabulate_grid(const TermStructure& interest,
                       const HazardPrefix& hazard_prefix,
                       std::span<const TimePoint> points,
                       std::span<double> discount, std::span<double> survival,
                       std::span<double> default_mass, bool refresh_discount,
                       simd::Level level) {
  CDSFLOW_ASSERT(discount.size() == points.size() &&
                     survival.size() == points.size() &&
                     default_mass.size() == points.size(),
                 "grid column spans must match the schedule length");
  if (level != simd::Level::kScalar) {
    // Vector path: columns via the SIMD kernels, default mass and leg sums
    // via the scalar reduction above. Where the SIMD tier resolves back to
    // kScalar the column values are the reference ones, so this branch is
    // then bit-identical to the fused walk below.
    simd::tabulate_columns(interest, hazard_prefix, points, discount, survival,
                           refresh_discount, level);
    double q_prev = 1.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      default_mass[i] = q_prev - survival[i];
      q_prev = survival[i];
    }
    return checked_grid_sums(reduce_leg_sums(points, discount, survival));
  }
  double premium = 0.0;
  double accrual = 0.0;
  double payoff = 0.0;
  double q_prev = 1.0;  // Q(0)
  for (std::size_t i = 0; i < points.size(); ++i) {
    const TimePoint tp = points[i];
    const double q = survival_probability_prefix(hazard_prefix, tp.t);
    if (refresh_discount) {
      const double r = interest.interpolate_fast(tp.t);
      discount[i] = std::exp(-r * tp.t);
    }
    const double d = discount[i];
    const LegTerms terms = leg_terms_from_discount(d, q_prev, q, tp.dt);
    survival[i] = q;
    default_mass[i] = q_prev - q;
    premium += terms.premium;
    accrual += terms.accrual;
    payoff += terms.payoff;
    q_prev = q;
  }
  return checked_grid_sums({premium, accrual, payoff});
}

}  // namespace detail

void BatchPricer::Workspace::clear() {
  grid_of.clear();
  grid_maturity.clear();
  grid_frequency.clear();
  grid_annuity.clear();
  grid_payoff.clear();
  grid_offset.clear();
  points.clear();
  discount.clear();
  survival.clear();
  default_mass.clear();
  dedup.clear();  // keeps the bucket array, so a warmed workspace stays
                  // allocation-free
}

BatchPricer::BatchPricer(TermStructure interest, TermStructure hazard,
                         simd::Level kernel_level)
    : interest_(std::move(interest)),
      hazard_(std::move(hazard)),
      hazard_prefix_(make_hazard_prefix(hazard_)),
      kernel_level_(simd::resolve_level(kernel_level)) {
  interest_.validate();
}

void BatchPricer::RiskWorkspace::clear() {
  base.clear();
  annuity_hazard_up.clear();
  payoff_hazard_up.clear();
  annuity_hazard_dn.clear();
  payoff_hazard_dn.clear();
  annuity_interest_up.clear();
  payoff_interest_up.clear();
  annuity_interest_dn.clear();
  payoff_interest_dn.clear();
  ladder_annuity_up.clear();
  ladder_payoff_up.clear();
  ladder_annuity_dn.clear();
  ladder_payoff_dn.clear();
  bucket_scratch.clear();
  scenario_col.clear();
}

BatchStats BatchPricer::build_grids(std::span<const CdsOption> options,
                                    Workspace& ws) const {
  BatchStats stats;
  stats.options = options.size();
  if (options.empty()) return stats;

  // Pass 1 -- dedup: map every option onto a unique (maturity, frequency)
  // grid id. Options are validated here, as in the scalar reference.
  ws.grid_of.reserve(options.size());
  for (const CdsOption& option : options) {
    option.validate();
    const detail::ScheduleKey key{
        std::bit_cast<std::uint64_t>(option.maturity_years),
        std::bit_cast<std::uint64_t>(option.payment_frequency)};
    const auto next_id = static_cast<std::uint32_t>(ws.grid_maturity.size());
    const auto [it, inserted] = ws.dedup.try_emplace(key, next_id);
    if (inserted) {
      ws.grid_maturity.push_back(option.maturity_years);
      ws.grid_frequency.push_back(option.payment_frequency);
    }
    ws.grid_of.push_back(it->second);
  }

  // Pass 2 -- per unique grid: materialise the schedule once into the flat
  // arena, then tabulate D/Q/dq and reduce the three leg sums via the shared
  // grid walk (detail::tabulate_grid), which accumulates in exactly the
  // scalar reference's order (so spreads match bit-for-bit).
  const std::size_t n_grids = ws.grid_maturity.size();
  ws.grid_offset.reserve(n_grids);
  ws.grid_annuity.reserve(n_grids);
  ws.grid_payoff.reserve(n_grids);
  if (kernel_level_ != simd::Level::kScalar) {
    // Vector pass 2: materialise every schedule first, tabulate the whole
    // arena in one SIMD sweep (a single lane tail for the batch instead of
    // one per grid -- on a continuous-maturity book the grids are tiny and
    // per-grid tails would eat most of the lane win), then reduce each
    // grid's leg sums in the reference order.
    for (std::size_t g = 0; g < n_grids; ++g) {
      CdsOption probe;  // schedule depends only on (maturity, frequency)
      probe.maturity_years = ws.grid_maturity[g];
      probe.payment_frequency = ws.grid_frequency[g];
      ws.grid_offset.push_back(ws.points.size());
      make_schedule(probe, ws.points);
    }
    const std::size_t arena = ws.points.size();
    ws.discount.resize(arena);
    ws.survival.resize(arena);
    ws.default_mass.resize(arena);
    simd::tabulate_columns(interest_, hazard_prefix_, ws.points, ws.discount,
                           ws.survival, /*refresh_discount=*/true,
                           kernel_level_);
    for (std::size_t g = 0; g < n_grids; ++g) {
      const std::size_t begin = ws.grid_offset[g];
      const std::size_t end = g + 1 < n_grids ? ws.grid_offset[g + 1] : arena;
      // One walk per grid: the default-mass column and the three leg sums,
      // the latter accumulating in exactly the scalar reference's order.
      detail::LegSums sums;
      double q_prev = 1.0;  // Q(0)
      for (std::size_t i = begin; i < end; ++i) {
        const double q = ws.survival[i];
        ws.default_mass[i] = q_prev - q;
        const LegTerms terms = leg_terms_from_discount(ws.discount[i], q_prev,
                                                       q, ws.points[i].dt);
        sums.premium += terms.premium;
        sums.accrual += terms.accrual;
        sums.payoff += terms.payoff;
        q_prev = q;
      }
      const detail::GridSums checked = detail::checked_grid_sums(sums);
      ws.grid_annuity.push_back(checked.annuity);
      ws.grid_payoff.push_back(checked.payoff);
    }
    stats.unique_schedules = n_grids;
    stats.grid_points = ws.points.size();
    return stats;
  }
  for (std::size_t g = 0; g < n_grids; ++g) {
    CdsOption probe;  // schedule depends only on (maturity, frequency)
    probe.maturity_years = ws.grid_maturity[g];
    probe.payment_frequency = ws.grid_frequency[g];
    const std::size_t offset = ws.points.size();
    ws.grid_offset.push_back(offset);
    const std::size_t n_points = make_schedule(probe, ws.points);
    ws.discount.resize(offset + n_points);
    ws.survival.resize(offset + n_points);
    ws.default_mass.resize(offset + n_points);
    const detail::GridSums sums = detail::tabulate_grid(
        interest_, hazard_prefix_,
        std::span<const TimePoint>(ws.points).subspan(offset, n_points),
        std::span<double>(ws.discount).subspan(offset, n_points),
        std::span<double>(ws.survival).subspan(offset, n_points),
        std::span<double>(ws.default_mass).subspan(offset, n_points),
        /*refresh_discount=*/true);
    ws.grid_annuity.push_back(sums.annuity);
    ws.grid_payoff.push_back(sums.payoff);
  }
  stats.unique_schedules = n_grids;
  stats.grid_points = ws.points.size();
  return stats;
}

BatchStats BatchPricer::price(std::span<const CdsOption> options,
                              std::span<SpreadResult> out,
                              Workspace& ws) const {
  CDSFLOW_EXPECT(out.size() == options.size(),
                 "batch price() needs out.size() == options.size()");
  ws.clear();
  BatchStats stats = build_grids(options, ws);
  if (options.empty()) return stats;
  const std::size_t n_grids = stats.unique_schedules;

  // Pass 3 -- per option: a branch-free combine against the reduced grid
  // sums. Association order matches combine_spread_bps; the vector kernel
  // evaluates the identical expression `lanes(level)` options per step, so
  // it stays bit-exact (see simd::combine_spreads).
  const std::uint32_t* grid_of = ws.grid_of.data();
  if (kernel_level_ != simd::Level::kScalar) {
    simd::combine_spreads(options, ws.grid_of, ws.grid_annuity, ws.grid_payoff,
                          out, kernel_level_);
  } else {
    const double* annuity = ws.grid_annuity.data();
    const double* payoff = ws.grid_payoff.data();
    for (std::size_t i = 0; i < options.size(); ++i) {
      const std::uint32_t g = grid_of[i];
      const double protection =
          (1.0 - options[i].recovery_rate) * payoff[g];
      out[i] = {options[i].id,
                kBasisPointsPerUnit * protection / annuity[g]};
    }
  }
  std::size_t scalar_points = 0;
  for (std::size_t i = 0; i < options.size(); ++i) {
    const std::uint32_t g = grid_of[i];
    const std::size_t grid_end =
        g + 1 < n_grids ? ws.grid_offset[g + 1] : ws.points.size();
    scalar_points += grid_end - ws.grid_offset[g];
  }
  stats.scalar_points = scalar_points;
  return stats;
}

std::vector<SpreadResult> BatchPricer::price(
    const std::vector<CdsOption>& options) const {
  Workspace ws;
  std::vector<SpreadResult> out(options.size());
  price(options, out, ws);
  return out;
}

BatchRiskStats BatchPricer::price_with_sensitivities(
    std::span<const CdsOption> options, std::span<Sensitivities> out,
    std::span<double> ladder_out, RiskWorkspace& ws,
    const BatchRiskConfig& config) const {
  CDSFLOW_EXPECT(out.size() == options.size(),
                 "batch risk needs out.size() == options.size()");
  const double bump = config.bump;
  CDSFLOW_EXPECT(bump > 0.0 && std::isfinite(bump),
                 "sensitivity bump must be positive and finite");
  std::size_t n_buckets = 0;
  if (!config.ladder_edges.empty()) {
    validate_ladder_edges(config.ladder_edges);
    n_buckets = config.ladder_edges.size() - 1;
  }
  CDSFLOW_EXPECT(ladder_out.size() == options.size() * n_buckets,
                 "batch risk needs ladder_out.size() == options * buckets");

  ws.clear();
  BatchRiskStats stats;
  stats.base = build_grids(options, ws.base);
  if (options.empty()) return stats;

  // The bumped curves are built once per *batch*; the scalar loop rebuilds
  // them once per option. A hazard bump never moves the discount column and
  // an interest bump never moves the survival column, so each scenario only
  // re-tabulates the column its bump touches and borrows the other from the
  // base grids.
  const HazardPrefix hazard_up =
      make_hazard_prefix(parallel_bump(hazard_, bump));
  const HazardPrefix hazard_dn =
      make_hazard_prefix(parallel_bump(hazard_, -bump));
  const TermStructure interest_up = parallel_bump(interest_, bump);
  const TermStructure interest_dn = parallel_bump(interest_, -bump);
  std::vector<HazardPrefix> bucket_up, bucket_dn;
  bucket_up.reserve(n_buckets);
  bucket_dn.reserve(n_buckets);
  for (std::size_t b = 0; b < n_buckets; ++b) {
    const double lo = config.ladder_edges[b];
    const double hi = config.ladder_edges[b + 1];
    bucket_up.push_back(
        make_hazard_prefix(bucket_bump(hazard_, lo, hi, bump)));
    bucket_dn.push_back(
        make_hazard_prefix(bucket_bump(hazard_, lo, hi, -bump)));
  }

  // Pass 2b -- per unique grid: tabulate every bumped scenario's leg sums
  // in one walk over the grid's points, each scenario accumulating in the
  // reference order with its own running survival.
  const std::size_t n_grids = stats.base.unique_schedules;
  ws.annuity_hazard_up.reserve(n_grids);
  ws.payoff_hazard_up.reserve(n_grids);
  ws.annuity_hazard_dn.reserve(n_grids);
  ws.payoff_hazard_dn.reserve(n_grids);
  ws.annuity_interest_up.reserve(n_grids);
  ws.payoff_interest_up.reserve(n_grids);
  ws.annuity_interest_dn.reserve(n_grids);
  ws.payoff_interest_dn.reserve(n_grids);
  ws.ladder_annuity_up.reserve(n_grids * n_buckets);
  ws.ladder_payoff_up.reserve(n_grids * n_buckets);
  ws.ladder_annuity_dn.reserve(n_grids * n_buckets);
  ws.ladder_payoff_dn.reserve(n_grids * n_buckets);
  // Layout of bucket_scratch, per bucket b and direction (up = 0, dn = 1):
  // [8 * b + 4 * dir + {0: q_prev, 1: premium, 2: accrual, 3: payoff}].
  ws.bucket_scratch.resize(8 * n_buckets);

  if (kernel_level_ != simd::Level::kScalar) {
    // Vector pass 2b: one arena-wide SIMD column per scenario -- the bumped
    // survival for hazard/bucket bumps (base discount reused), the bumped
    // discount for interest bumps (base survival reused) -- then a scalar
    // per-grid reduction in the reference order. Column-at-a-time keeps the
    // extra scratch at a single arena column regardless of ladder size.
    const std::size_t arena = ws.base.points.size();
    ws.scenario_col.resize(arena);
    const auto points = std::span<const TimePoint>(ws.base.points);
    const auto col = std::span<double>(ws.scenario_col);

    const auto reduce_all = [&](std::span<const double> discount,
                                std::span<const double> survival,
                                auto&& store) {
      for (std::size_t g = 0; g < n_grids; ++g) {
        const std::size_t begin = ws.base.grid_offset[g];
        const std::size_t end =
            g + 1 < n_grids ? ws.base.grid_offset[g + 1] : arena;
        const std::size_t n = end - begin;
        store(g, detail::checked_grid_sums(detail::reduce_leg_sums(
                     points.subspan(begin, n), discount.subspan(begin, n),
                     survival.subspan(begin, n))));
      }
    };
    const auto push_into = [](std::vector<double>& annuities,
                              std::vector<double>& payoffs) {
      return [&annuities, &payoffs](std::size_t, const detail::GridSums& s) {
        annuities.push_back(s.annuity);
        payoffs.push_back(s.payoff);
      };
    };

    // Hazard parallel bumps: base discount, bumped survival.
    simd::survival_column(hazard_up, points, col, kernel_level_);
    reduce_all(ws.base.discount, col,
               push_into(ws.annuity_hazard_up, ws.payoff_hazard_up));
    simd::survival_column(hazard_dn, points, col, kernel_level_);
    reduce_all(ws.base.discount, col,
               push_into(ws.annuity_hazard_dn, ws.payoff_hazard_dn));
    // Interest parallel bumps: bumped discount, base survival.
    simd::discount_column(interest_up, points, col, kernel_level_);
    reduce_all(col, ws.base.survival,
               push_into(ws.annuity_interest_up, ws.payoff_interest_up));
    simd::discount_column(interest_dn, points, col, kernel_level_);
    reduce_all(col, ws.base.survival,
               push_into(ws.annuity_interest_dn, ws.payoff_interest_dn));
    // Ladder bucket bumps: base discount, bucket-bumped survival. The
    // per-(grid, bucket) vectors are row-major per grid, so the per-bucket
    // column sweeps write by index instead of pushing.
    ws.ladder_annuity_up.resize(n_grids * n_buckets);
    ws.ladder_payoff_up.resize(n_grids * n_buckets);
    ws.ladder_annuity_dn.resize(n_grids * n_buckets);
    ws.ladder_payoff_dn.resize(n_grids * n_buckets);
    for (std::size_t b = 0; b < n_buckets; ++b) {
      simd::survival_column(bucket_up[b], points, col, kernel_level_);
      reduce_all(ws.base.discount, col,
                 [&](std::size_t g, const detail::GridSums& s) {
                   ws.ladder_annuity_up[g * n_buckets + b] = s.annuity;
                   ws.ladder_payoff_up[g * n_buckets + b] = s.payoff;
                 });
      simd::survival_column(bucket_dn[b], points, col, kernel_level_);
      reduce_all(ws.base.discount, col,
                 [&](std::size_t g, const detail::GridSums& s) {
                   ws.ladder_annuity_dn[g * n_buckets + b] = s.annuity;
                   ws.ladder_payoff_dn[g * n_buckets + b] = s.payoff;
                 });
    }
  } else {
    for (std::size_t g = 0; g < n_grids; ++g) {
      const std::size_t begin = ws.base.grid_offset[g];
      const std::size_t end =
          g + 1 < n_grids ? ws.base.grid_offset[g + 1] : ws.base.points.size();

      double premium_hup = 0.0, accrual_hup = 0.0, payoff_hup = 0.0;
      double premium_hdn = 0.0, accrual_hdn = 0.0, payoff_hdn = 0.0;
      double premium_iup = 0.0, accrual_iup = 0.0, payoff_iup = 0.0;
      double premium_idn = 0.0, accrual_idn = 0.0, payoff_idn = 0.0;
      double q_prev_hup = 1.0, q_prev_hdn = 1.0, q_prev_base = 1.0;
      for (double& v : ws.bucket_scratch) v = 0.0;
      for (std::size_t b = 0; b < n_buckets; ++b) {
        ws.bucket_scratch[8 * b] = 1.0;      // q_prev, up
        ws.bucket_scratch[8 * b + 4] = 1.0;  // q_prev, dn
      }

      for (std::size_t i = begin; i < end; ++i) {
        const TimePoint tp = ws.base.points[i];
        const double d_base = ws.base.discount[i];
        const double q_base = ws.base.survival[i];
        // Hazard parallel bumps: base discount, bumped survival.
        {
          const double q = survival_probability_prefix(hazard_up, tp.t);
          const LegTerms terms =
              leg_terms_from_discount(d_base, q_prev_hup, q, tp.dt);
          premium_hup += terms.premium;
          accrual_hup += terms.accrual;
          payoff_hup += terms.payoff;
          q_prev_hup = q;
        }
        {
          const double q = survival_probability_prefix(hazard_dn, tp.t);
          const LegTerms terms =
              leg_terms_from_discount(d_base, q_prev_hdn, q, tp.dt);
          premium_hdn += terms.premium;
          accrual_hdn += terms.accrual;
          payoff_hdn += terms.payoff;
          q_prev_hdn = q;
        }
        // Interest parallel bumps: bumped discount, base survival.
        {
          const double r = interest_up.interpolate_fast(tp.t);
          const LegTerms terms = leg_terms_from_discount(
              std::exp(-r * tp.t), q_prev_base, q_base, tp.dt);
          premium_iup += terms.premium;
          accrual_iup += terms.accrual;
          payoff_iup += terms.payoff;
        }
        {
          const double r = interest_dn.interpolate_fast(tp.t);
          const LegTerms terms = leg_terms_from_discount(
              std::exp(-r * tp.t), q_prev_base, q_base, tp.dt);
          premium_idn += terms.premium;
          accrual_idn += terms.accrual;
          payoff_idn += terms.payoff;
        }
        // Ladder bucket bumps: base discount, bucket-bumped survival.
        for (std::size_t b = 0; b < n_buckets; ++b) {
          double* up = ws.bucket_scratch.data() + 8 * b;
          double* dn = up + 4;
          const double q_up = survival_probability_prefix(bucket_up[b], tp.t);
          const LegTerms terms_up =
              leg_terms_from_discount(d_base, up[0], q_up, tp.dt);
          up[1] += terms_up.premium;
          up[2] += terms_up.accrual;
          up[3] += terms_up.payoff;
          up[0] = q_up;
          const double q_dn = survival_probability_prefix(bucket_dn[b], tp.t);
          const LegTerms terms_dn =
              leg_terms_from_discount(d_base, dn[0], q_dn, tp.dt);
          dn[1] += terms_dn.premium;
          dn[2] += terms_dn.accrual;
          dn[3] += terms_dn.payoff;
          dn[0] = q_dn;
        }
        q_prev_base = q_base;
      }

      // Hoisted per grid, exactly like the base pass: the annuity is
      // recovery-free under every scenario (same diagnostic as
      // combine_spread_bps, which the scalar bumped repricings hit).
      const auto push_scenario = [](double premium, double accrual,
                                    double payoff, std::vector<double>& annuities,
                                    std::vector<double>& payoffs) {
        const double annuity = premium + accrual;
        CDSFLOW_EXPECT(annuity > 0.0,
                       "risky annuity must be positive to quote a spread");
        annuities.push_back(annuity);
        payoffs.push_back(payoff);
      };
      push_scenario(premium_hup, accrual_hup, payoff_hup, ws.annuity_hazard_up,
                    ws.payoff_hazard_up);
      push_scenario(premium_hdn, accrual_hdn, payoff_hdn, ws.annuity_hazard_dn,
                    ws.payoff_hazard_dn);
      push_scenario(premium_iup, accrual_iup, payoff_iup,
                    ws.annuity_interest_up, ws.payoff_interest_up);
      push_scenario(premium_idn, accrual_idn, payoff_idn,
                    ws.annuity_interest_dn, ws.payoff_interest_dn);
      for (std::size_t b = 0; b < n_buckets; ++b) {
        const double* up = ws.bucket_scratch.data() + 8 * b;
        const double* dn = up + 4;
        push_scenario(up[1], up[2], up[3], ws.ladder_annuity_up,
                      ws.ladder_payoff_up);
        push_scenario(dn[1], dn[2], dn[3], ws.ladder_annuity_dn,
                      ws.ladder_payoff_dn);
      }
    }
  }
  stats.bumped_grid_points = (4 + 2 * n_buckets) * stats.base.grid_points;

  // Pass 3 -- per option: every sensitivity is an O(1) combine. The
  // expressions mirror compute_sensitivities / cs01_ladder term for term so
  // the results are bit-consistent with the scalar reference.
  const double* annuity = ws.base.grid_annuity.data();
  const double* payoff = ws.base.grid_payoff.data();
  std::size_t scalar_points = 0;
  for (std::size_t i = 0; i < options.size(); ++i) {
    const std::uint32_t g = ws.base.grid_of[i];
    const double recovery = options[i].recovery_rate;
    const double one_minus_r = 1.0 - recovery;
    Sensitivities s;
    s.spread_bps =
        kBasisPointsPerUnit * (one_minus_r * payoff[g]) / annuity[g];
    {
      const double up = kBasisPointsPerUnit *
                        (one_minus_r * ws.payoff_hazard_up[g]) /
                        ws.annuity_hazard_up[g];
      const double dn = kBasisPointsPerUnit *
                        (one_minus_r * ws.payoff_hazard_dn[g]) /
                        ws.annuity_hazard_dn[g];
      s.cs01 = (up - dn) / (2.0 * bump) * 1e-4;
    }
    {
      const double up = kBasisPointsPerUnit *
                        (one_minus_r * ws.payoff_interest_up[g]) /
                        ws.annuity_interest_up[g];
      const double dn = kBasisPointsPerUnit *
                        (one_minus_r * ws.payoff_interest_dn[g]) /
                        ws.annuity_interest_dn[g];
      s.ir01 = (up - dn) / (2.0 * bump) * 1e-4;
    }
    {
      // The spread is linear in the recovery rate, so the scalar path's
      // central difference is an exact reweighting of the base sums.
      const double rb = std::min(bump, 0.5 * (1.0 - recovery));
      const double recovery_up = recovery + rb;
      const double recovery_dn = std::max(0.0, recovery - rb);
      const double up =
          kBasisPointsPerUnit * ((1.0 - recovery_up) * payoff[g]) / annuity[g];
      const double dn =
          kBasisPointsPerUnit * ((1.0 - recovery_dn) * payoff[g]) / annuity[g];
      s.rec01 = (up - dn) / (recovery_up - recovery_dn) * 0.01;
    }
    s.jtd = one_minus_r;
    out[i] = s;
    for (std::size_t b = 0; b < n_buckets; ++b) {
      const std::size_t gb = g * n_buckets + b;
      const double up = kBasisPointsPerUnit *
                        (one_minus_r * ws.ladder_payoff_up[gb]) /
                        ws.ladder_annuity_up[gb];
      const double dn = kBasisPointsPerUnit *
                        (one_minus_r * ws.ladder_payoff_dn[gb]) /
                        ws.ladder_annuity_dn[gb];
      ladder_out[i * n_buckets + b] = (up - dn) / (2.0 * bump) * 1e-4;
    }
    const std::size_t grid_end = g + 1 < n_grids
                                     ? ws.base.grid_offset[g + 1]
                                     : ws.base.points.size();
    scalar_points += grid_end - ws.base.grid_offset[g];
  }
  stats.base.scalar_points = scalar_points;
  stats.scalar_repricings = options.size() * (7 + 2 * n_buckets);
  return stats;
}

BatchPricer::RiskRun BatchPricer::price_with_sensitivities(
    const std::vector<CdsOption>& options,
    const BatchRiskConfig& config) const {
  RiskRun run;
  run.ladder_buckets =
      config.ladder_edges.empty() ? 0 : config.ladder_edges.size() - 1;
  run.sensitivities.resize(options.size());
  run.cs01_ladder.resize(options.size() * run.ladder_buckets);
  RiskWorkspace ws;
  run.stats = price_with_sensitivities(options, run.sensitivities,
                                       run.cs01_ladder, ws, config);
  return run;
}

}  // namespace cdsflow::cds
