/// \file memory.hpp
/// External-memory access model (HBM2 via m_axi ports).
///
/// Per Xilinx best practice (paper Sec. III, ref [7]) external accesses are
/// packed into 512-bit words; a port therefore moves 64 bytes per kernel
/// cycle once a burst is running, with a fixed latency to the first beat.
/// Engines use this model to pace option/result streaming and to account the
/// one-time load of the interest/hazard curves into on-chip URAM.

#pragma once

#include <cstdint>

#include "sim/cycle.hpp"

namespace cdsflow::hls {

struct MemoryPortConfig {
  /// AXI data width in bits (512 per best practice).
  unsigned data_width_bits = 512;
  /// Cycles from request to the first beat of a burst (HBM2 via the U280
  /// memory subsystem, ~ 60 kernel cycles at 300 MHz).
  sim::Cycle burst_latency = 60;
  /// Maximum beats per burst (AXI limit).
  unsigned max_burst_beats = 64;
};

/// Cycle cost calculator for one m_axi port.
class MemoryPortModel {
 public:
  explicit MemoryPortModel(MemoryPortConfig config = {});

  const MemoryPortConfig& config() const { return config_; }

  /// Bytes moved per fully pipelined beat.
  std::uint64_t bytes_per_beat() const;

  /// Cycles to stream `bytes` as back-to-back bursts (latency paid once per
  /// burst, beats pipelined).
  sim::Cycle transfer_cycles(std::uint64_t bytes) const;

  /// Cycles between successive tokens of `token_bytes` each when streaming
  /// continuously (>=1; sub-beat tokens still take a cycle).
  sim::Cycle pacing_cycles(std::uint64_t token_bytes) const;

 private:
  MemoryPortConfig config_;
};

}  // namespace cdsflow::hls
