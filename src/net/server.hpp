/// \file server.hpp
/// Single-threaded poll() event-loop socket server for the pricing service.
///
/// One thread, one poll() loop, no per-connection threads: the listener, a
/// self-pipe (for a thread-safe stop()) and every live connection share one
/// pollfd set. Each connection owns a net::FrameReader, so bytes may arrive
/// in arbitrary splits; completed frames are handed to the ServerHandler in
/// stream order. All handler callbacks run on the loop thread -- handler
/// state needs no locks, and Server::send()/close_connection() are loop-
/// thread-only by the same token (stop() is the one thread-safe entry
/// point). Writes are buffered per connection and flushed via POLLOUT, so a
/// slow reader never blocks the loop.
///
/// A poisoned reader (net/codec.hpp) is a protocol violation: the handler
/// gets on_malformed() -- typically answering with an encoded kMalformed
/// reject -- and the connection is torn down after its outbound buffer
/// drains. Nothing after the first framing error is ever parsed.
///
/// Transports: a unix-domain socket (path; used by tests and the bench --
/// no port collisions) or TCP on loopback/any (port 0 picks an ephemeral
/// port, readable via tcp_port()). The socket is bound and listening when
/// the constructor returns, so clients may connect before run() starts.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/codec.hpp"

namespace cdsflow::net {

struct ServerConfig {
  /// Non-empty: serve on this unix-domain socket path (unlinked first).
  std::string unix_path;
  /// Used when unix_path is empty: TCP port to bind (0 = ephemeral).
  std::uint16_t tcp_port = 0;
  int backlog = 16;
  /// poll() timeout; on_tick() fires at least this often even when idle
  /// (the service uses the tick to harvest completed micro-batches).
  std::uint64_t tick_us = 500;
};

class Server;

/// Event callbacks, all invoked on the loop thread inside run().
class ServerHandler {
 public:
  virtual ~ServerHandler() = default;
  /// A completed, structurally-valid frame from connection `conn`.
  virtual void on_frame(Server& server, int conn, Frame frame) = 0;
  /// The connection's stream is poisoned (`error` from the FrameReader).
  /// The server closes the connection after this returns (outbound bytes,
  /// e.g. a reject sent here, are flushed first).
  virtual void on_malformed(Server& server, int conn,
                            const std::string& error);
  /// Fires once per loop iteration (after I/O, at least every tick_us).
  virtual void on_tick(Server& server);
  /// The peer disconnected or the connection was torn down.
  virtual void on_disconnect(int conn);
};

class Server {
 public:
  /// Binds and listens; throws cdsflow::Error on any socket failure.
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Runs the event loop on the calling thread until stop().
  void run(ServerHandler& handler);

  /// Thread-safe: wakes the loop and makes run() return (idempotent).
  void stop();

  /// Queues bytes to `conn` (loop thread only, i.e. from handler
  /// callbacks). Unknown connection ids are ignored (the peer may have
  /// disconnected between frame and response).
  void send(int conn, const std::vector<std::uint8_t>& bytes);

  /// Flushes `conn`'s outbound buffer, then closes it (loop thread only).
  void close_connection(int conn);

  /// Bound TCP port (the ephemeral one when config.tcp_port was 0);
  /// 0 for unix-domain servers.
  std::uint16_t tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return config_.unix_path; }
  std::size_t connections() const { return connections_.size(); }

 private:
  struct Connection {
    FrameReader reader;
    std::vector<std::uint8_t> outbound;
    std::size_t outbound_offset = 0;
    /// Close once the outbound buffer drains (reject-then-close path).
    bool closing = false;
  };

  void accept_ready(ServerHandler& handler);
  /// Returns false when the connection was torn down.
  bool read_ready(ServerHandler& handler, int fd);
  bool flush(int fd);
  void teardown(ServerHandler& handler, int fd, bool notify);

  ServerConfig config_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;   // self-pipe: stop() writes, the loop drains
  int wake_write_fd_ = -1;
  std::uint16_t tcp_port_ = 0;
  std::map<int, Connection> connections_;
  bool stopping_ = false;
};

}  // namespace cdsflow::net
