/// \file streaming_quotes.cpp
/// Real-time quote service scenario (the paper's AAT future-work context):
/// CDS quote requests arrive as a live feed; the free-running engine prices
/// them as they come. Shows the latency/throughput trade-off a trading desk
/// cares about: the same engine that maximises overnight batch throughput
/// answers individual quotes in tens of microseconds while the feed stays
/// below its saturation rate.
///
/// Run:  ./streaming_quotes [n_quotes]

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "common/format.hpp"
#include "common/rng.hpp"
#include "engines/vectorised_engine.hpp"
#include "report/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_quotes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;

  const auto scenario = workload::paper_scenario(n_quotes, /*seed=*/314);
  const double clock = engine::FpgaEngineConfig{}.clock_hz();

  // Saturation throughput first (batch mode).
  engine::VectorisedEngine batch(scenario.interest, scenario.hazard, {});
  const auto batch_run = batch.price(scenario.options);
  std::cout << "quote engine saturation throughput: "
            << with_thousands(batch_run.options_per_second, 0)
            << " quotes/s (simulated vectorised engine)\n\n";

  // A Poisson-ish feed at 60% of saturation: exponential inter-arrival
  // gaps drawn deterministically.
  const double mean_gap_s = 1.0 / (batch_run.options_per_second * 0.6);
  auto rng = std::make_shared<Rng>(2718);
  engine::FpgaEngineConfig cfg;
  cfg.option_arrival_pace = [rng, mean_gap_s,
                             clock](const engine::OptionToken&) {
    const double u = std::max(1e-9, rng->uniform01());
    const double gap_s = -mean_gap_s * std::log(u);
    return std::max<sim::Cycle>(1, static_cast<sim::Cycle>(gap_s * clock));
  };
  engine::VectorisedEngine live(scenario.interest, scenario.hazard, cfg);
  const auto live_run = live.price(scenario.options);
  const auto stats =
      engine::latency_stats(live.last_run().option_latency_cycles);

  auto us = [clock](double cycles) {
    return fixed(cycles / clock * 1e6, 1) + " us";
  };
  report::Table table("quote-response latency at 60% load (Poisson feed)");
  table.set_columns({"Metric", "Value"});
  table.add_row({"quotes served", std::to_string(live_run.results.size())});
  table.add_row({"p50 latency", us(stats.p50)});
  table.add_row({"p95 latency", us(stats.p95)});
  table.add_row({"p99 latency", us(stats.p99)});
  table.add_row({"worst case", us(stats.max)});
  table.add_row({"mean", us(stats.mean)});
  std::cout << table.render_text() << '\n';

  std::cout << "first five quotes on the wire:\n";
  for (std::size_t i = 0; i < 5 && i < live_run.results.size(); ++i) {
    std::cout << "  quote " << live_run.results[i].id << ": "
              << fixed(live_run.results[i].spread_bps, 2) << " bps after "
              << us(static_cast<double>(
                     live.last_run().option_latency_cycles[i]))
              << '\n';
  }
  return 0;
}
