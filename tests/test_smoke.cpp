/// \file test_smoke.cpp
/// End-to-end smoke: every engine prices a small book and agrees with the
/// golden model. Deeper per-module suites live in the sibling test files.

#include <gtest/gtest.h>

#include "cds/pricer.hpp"
#include "common/stats.hpp"
#include "engines/registry.hpp"
#include "workload/scenario.hpp"

namespace cdsflow {
namespace {

TEST(Smoke, AllEnginesAgreeWithGoldenModel) {
  const auto scenario = workload::smoke_scenario(12, 99);
  const cds::ReferencePricer golden(scenario.interest, scenario.hazard);
  const auto expected = golden.price(scenario.options);

  for (const auto& name :
       {"cpu", "xilinx-baseline", "dataflow", "dataflow-interoption",
        "vectorised", "multi-2"}) {
    SCOPED_TRACE(name);
    auto engine = engine::make_engine(name, scenario.interest,
                                      scenario.hazard);
    const auto run = engine->price(scenario.options);
    ASSERT_EQ(run.results.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(run.results[i].id, expected[i].id);
      EXPECT_LT(relative_difference(run.results[i].spread_bps,
                                    expected[i].spread_bps),
                1e-9);
    }
    EXPECT_GT(run.options_per_second, 0.0);
  }
}

}  // namespace
}  // namespace cdsflow
