/// \file interoption_engine.hpp
/// The "Dataflow inter-options" engine (paper Table I, row 4).
///
/// The dataflow region runs continuously: options are streamed in and
/// spreads streamed out, every stage knows the batch size, and the pipelines
/// stay full across option boundaries. Removing the per-option restart
/// roughly doubled throughput in the paper -- here the same effect falls out
/// of running one free-running simulation for the whole batch.

#pragma once

#include "cds/curve.hpp"
#include "engines/engine.hpp"
#include "engines/stage_library.hpp"

namespace cdsflow::engine {

class InterOptionEngine final : public Engine {
 public:
  InterOptionEngine(cds::TermStructure interest, cds::TermStructure hazard,
                    FpgaEngineConfig config = {});

  std::string name() const override { return "dataflow-interoption"; }
  std::string description() const override {
    return "Free-running dataflow engine (options stream through, no "
           "restarts)";
  }

  PricingRun price(const std::vector<cds::CdsOption>& options) override;

  /// Graph handles of the most recent run (stall counters, stage busy
  /// cycles) -- valid only until the next price() call. The simulation
  /// itself is destroyed, so only the aggregate data copied into `LastRun`
  /// survives.
  struct LastRunStats {
    std::uint64_t total_time_points = 0;
    sim::Cycle hazard_busy = 0;
    sim::Cycle interp_busy = 0;
    /// Per-option end-to-end latency in kernel cycles, submission order.
    std::vector<sim::Cycle> option_latency_cycles;
  };
  const LastRunStats& last_run() const { return last_run_; }

 private:
  cds::TermStructure interest_;
  cds::TermStructure hazard_;
  FpgaEngineConfig config_;
  LastRunStats last_run_;
};

}  // namespace cdsflow::engine
