#include "cds/stream_pricer.hpp"

#include <bit>
#include <cmath>
#include <utility>

#include "cds/schedule.hpp"
#include "common/error.hpp"

namespace cdsflow::cds {

StreamPricer::StreamPricer(TermStructure interest, TermStructure hazard,
                           StreamPricerConfig config)
    : interest_(std::move(interest)),
      hazard_(std::move(hazard)),
      hazard_prefix_(make_hazard_prefix(hazard_)),
      config_(std::move(config)) {
  interest_.validate();
  CDSFLOW_EXPECT(config_.risk_bump > 0.0 && std::isfinite(config_.risk_bump),
                 "sensitivity bump must be positive and finite");
  if (!config_.ladder_edges.empty()) {
    validate_ladder_edges(config_.ladder_edges);
  }
  risk_config_.bump = config_.risk_bump;
  risk_config_.ladder_edges = config_.ladder_edges;
}

void StreamPricer::tabulate(std::size_t g, bool refresh_discount) {
  const std::size_t offset = grids_.grid_offset[g];
  const std::size_t n_points = grid_points_[g];
  const detail::GridSums sums = detail::tabulate_grid(
      interest_, hazard_prefix_,
      std::span<const TimePoint>(grids_.points).subspan(offset, n_points),
      std::span<double>(grids_.discount).subspan(offset, n_points),
      std::span<double>(grids_.survival).subspan(offset, n_points),
      std::span<double>(grids_.default_mass).subspan(offset, n_points),
      refresh_discount, config_.kernel_level);
  grids_.grid_annuity[g] = sums.annuity;
  grids_.grid_payoff[g] = sums.payoff;
}

void StreamPricer::price(std::span<const CdsOption> options,
                         std::span<SpreadResult> out) {
  CDSFLOW_EXPECT(out.size() == options.size(),
                 "stream price() needs out.size() == options.size()");
  // Pass 1 -- dedup against the *persistent* map: new (maturity, frequency)
  // pairs tabulate a grid that then serves every later batch.
  grids_.grid_of.clear();
  grids_.grid_of.reserve(options.size());
  for (const CdsOption& option : options) {
    option.validate();
    const detail::ScheduleKey key{
        std::bit_cast<std::uint64_t>(option.maturity_years),
        std::bit_cast<std::uint64_t>(option.payment_frequency)};
    const auto next_id = static_cast<std::uint32_t>(grids_.grid_maturity.size());
    const auto [it, inserted] = grids_.dedup.try_emplace(key, next_id);
    if (inserted) {
      grids_.grid_maturity.push_back(option.maturity_years);
      grids_.grid_frequency.push_back(option.payment_frequency);
      CdsOption probe;  // schedule depends only on (maturity, frequency)
      probe.maturity_years = option.maturity_years;
      probe.payment_frequency = option.payment_frequency;
      const std::size_t offset = grids_.points.size();
      grids_.grid_offset.push_back(offset);
      const std::size_t n_points = make_schedule(probe, grids_.points);
      grid_points_.push_back(n_points);
      grids_.discount.resize(offset + n_points);
      grids_.survival.resize(offset + n_points);
      grids_.default_mass.resize(offset + n_points);
      grids_.grid_annuity.push_back(0.0);
      grids_.grid_payoff.push_back(0.0);
      tabulate(next_id, /*refresh_discount=*/true);
    }
    grids_.grid_of.push_back(it->second);
  }

  // Pass 2 -- per option: the same branch-free combine as the batch kernel
  // (vectorised `lanes` at a time under a SIMD level; bit-exact either way,
  // see simd::combine_spreads).
  if (config_.kernel_level != simd::Level::kScalar) {
    simd::combine_spreads(options, grids_.grid_of, grids_.grid_annuity,
                          grids_.grid_payoff, out, config_.kernel_level);
  } else {
    const double* annuity = grids_.grid_annuity.data();
    const double* payoff = grids_.grid_payoff.data();
    for (std::size_t i = 0; i < options.size(); ++i) {
      const std::uint32_t g = grids_.grid_of[i];
      const double protection = (1.0 - options[i].recovery_rate) * payoff[g];
      out[i] = {options[i].id, kBasisPointsPerUnit * protection / annuity[g]};
    }
  }

  stats_.options_priced += options.size();
  stats_.batches += 1;
  stats_.cached_grids = grids_.grid_maturity.size();
  stats_.grid_points = grids_.points.size();
}

const BatchPricer& StreamPricer::risk_pricer() {
  if (risk_dirty_ || !risk_pricer_) {
    risk_pricer_ = std::make_unique<BatchPricer>(interest_, hazard_,
                                                 config_.kernel_level);
    risk_dirty_ = false;
  }
  return *risk_pricer_;
}

void StreamPricer::price_with_sensitivities(
    std::span<const CdsOption> options, std::span<SpreadResult> out,
    std::span<Sensitivities> sensitivities, std::span<double> ladder_out) {
  CDSFLOW_EXPECT(config_.risk_mode,
                 "price_with_sensitivities needs a risk-mode stream pricer");
  CDSFLOW_EXPECT(sensitivities.size() == options.size(),
                 "stream risk needs sensitivities.size() == options.size()");
  // Spreads via the incremental grid cache (also registers new grids so
  // spread-path accounting stays exact in mixed streams) ...
  price(options, out);
  // ... Greeks via the batched risk kernel on the current curves. The
  // per-option spread it computes is bit-identical to the combine above, so
  // sensitivities[i].spread_bps == out[i].spread_bps.
  risk_pricer().price_with_sensitivities(options, sensitivities, ladder_out,
                                         risk_workspace_, risk_config_);
}

std::size_t StreamPricer::update_hazard_quote(std::size_t knot, double rate) {
  CDSFLOW_EXPECT(knot < hazard_.size(),
                 "hazard-quote update knot out of range");
  CDSFLOW_EXPECT(std::isfinite(rate) && rate > 0.0,
                 "hazard-quote update rate must be positive and finite");
  std::vector<double> values = hazard_.values();
  values[knot] = rate;
  hazard_ = TermStructure(hazard_.times(), std::move(values));
  hazard_prefix_ = make_hazard_prefix(hazard_);
  risk_dirty_ = true;

  // Rate h_k applies on (tau_{k-1}, tau_k], so Lambda(t) -- and Q(t) --
  // moved only for t > tau_{k-1}: grids whose maturity (= last schedule
  // point) stays at or below that threshold keep bit-identical columns and
  // sums. knot == 0 moves the very first segment, so everything with t > 0
  // (every schedule point) is affected.
  const double affected_past = knot == 0 ? 0.0 : hazard_.time(knot - 1);
  std::size_t retabulated = 0;
  const std::size_t n_grids = grids_.grid_maturity.size();
  for (std::size_t g = 0; g < n_grids; ++g) {
    if (grids_.grid_maturity[g] > affected_past) {
      tabulate(g, /*refresh_discount=*/false);
      ++retabulated;
    }
  }
  stats_.hazard_updates += 1;
  stats_.grids_retabulated += retabulated;
  stats_.full_rebuild_grids += n_grids;
  return retabulated;
}

}  // namespace cdsflow::cds
