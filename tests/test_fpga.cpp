/// \file test_fpga.cpp
/// Unit tests for the fpga module: device specs, resource estimation (the
/// five-engine packing limit), power models, interconnect costs, and the
/// calibrated HLS cost model's provenance-critical relationships.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "fpga/device.hpp"
#include "fpga/hls_cost_model.hpp"
#include "fpga/interconnect.hpp"
#include "fpga/power.hpp"
#include "fpga/resource.hpp"

namespace cdsflow::fpga {
namespace {

// --- device -----------------------------------------------------------------

TEST(Device, U280MatchesPaperNumbers) {
  const auto d = alveo_u280();
  EXPECT_EQ(d.luts, 1'304'000u);                      // "1.3 million LUTs"
  EXPECT_EQ(d.bram_bytes, 4'718'592u);                // 4.5 MB BRAM
  EXPECT_EQ(d.uram_bytes, 30u * 1024 * 1024);         // 30 MB URAM
  EXPECT_EQ(d.dsp_slices, 9024u);                     // 9024 DSP slices
  EXPECT_EQ(d.hbm_bytes, 8ull * 1024 * 1024 * 1024);  // 8 GB HBM2
  EXPECT_EQ(d.dram_bytes, 32ull * 1024 * 1024 * 1024);
}

TEST(Device, UramBlockCount) {
  const auto d = alveo_u280();
  // 30 MiB / 36 KiB per URAM288 block.
  EXPECT_EQ(d.uram_blocks(), 853u);
}

TEST(Device, ClockConversions) {
  ClockConfig clock;  // 300 MHz
  EXPECT_DOUBLE_EQ(clock.cycles_to_seconds(300'000'000), 1.0);
  EXPECT_DOUBLE_EQ(clock.seconds_to_cycles(2.0), 600.0e6);
}

// --- resource estimation ------------------------------------------------------

TEST(Resource, UsageArithmetic) {
  ResourceUsage a{.luts = 10, .flip_flops = 20, .dsp_slices = 3};
  ResourceUsage b{.luts = 1, .flip_flops = 2, .dsp_slices = 30};
  const auto c = a + b;
  EXPECT_EQ(c.luts, 11u);
  EXPECT_EQ(c.dsp_slices, 33u);
  const auto d = a.scaled(4);
  EXPECT_EQ(d.luts, 40u);
  EXPECT_EQ(d.flip_flops, 80u);
}

TEST(Resource, PaperConfigFitsFiveEnginesNotSix) {
  const ResourceEstimator estimator(alveo_u280());
  EngineShape paper_shape;  // defaults: 6+6 lanes, 7 acc lanes, 1024 points
  paper_shape.hazard_lanes = 6;
  paper_shape.interpolation_lanes = 6;
  EXPECT_TRUE(estimator.fits(paper_shape, 5));
  EXPECT_FALSE(estimator.fits(paper_shape, 6));
  EXPECT_EQ(estimator.max_engines(paper_shape), 5u);
}

TEST(Resource, MoreLanesCostMore) {
  const ResourceEstimator estimator(alveo_u280());
  EngineShape narrow, wide;
  narrow.hazard_lanes = narrow.interpolation_lanes = 1;
  wide.hazard_lanes = wide.interpolation_lanes = 8;
  const auto n = estimator.estimate_engine(narrow).total;
  const auto w = estimator.estimate_engine(wide).total;
  EXPECT_LT(n.luts, w.luts);
  EXPECT_LT(n.dsp_slices, w.dsp_slices);
  EXPECT_LT(n.uram_blocks, w.uram_blocks);
  // And the narrow engine packs more instances.
  EXPECT_GT(estimator.max_engines(narrow), estimator.max_engines(wide));
}

TEST(Resource, BaselineShapeIsSmallerThanVectorised) {
  const ResourceEstimator estimator(alveo_u280());
  EngineShape baseline;
  baseline.hazard_lanes = 1;
  baseline.interpolation_lanes = 1;
  baseline.accumulation_lanes = 1;
  baseline.dataflow_plumbing = false;
  EngineShape vectorised;
  vectorised.hazard_lanes = vectorised.interpolation_lanes = 6;
  EXPECT_LT(estimator.estimate_engine(baseline).total.luts,
            estimator.estimate_engine(vectorised).total.luts);
}

TEST(Resource, UramGrowsWithCurveSize) {
  const ResourceEstimator estimator(alveo_u280());
  EngineShape small, big;
  small.curve_points = 1024;
  big.curve_points = 16384;  // 16k points: 256 KiB per replica pair
  EXPECT_LT(estimator.estimate_engine(small).total.uram_blocks,
            estimator.estimate_engine(big).total.uram_blocks);
}

TEST(Resource, BreakdownSumsToTotal) {
  const ResourceEstimator estimator(alveo_u280());
  const auto est = estimator.estimate_engine(EngineShape{});
  ResourceUsage sum;
  for (const auto& [name, usage] : est.breakdown) sum += usage;
  EXPECT_EQ(sum.luts, est.total.luts);
  EXPECT_EQ(sum.dsp_slices, est.total.dsp_slices);
  EXPECT_EQ(sum.uram_blocks, est.total.uram_blocks);
}

TEST(Resource, RejectsDegenerateShapes) {
  const ResourceEstimator estimator(alveo_u280());
  EngineShape bad;
  bad.hazard_lanes = 0;
  EXPECT_THROW(estimator.estimate_engine(bad), Error);
  EXPECT_THROW(estimator.estimate_design(EngineShape{}, 0), Error);
}

TEST(Resource, UtilisationReportMentionsVerdict) {
  const ResourceEstimator estimator(alveo_u280());
  EngineShape paper_shape;
  paper_shape.hazard_lanes = 6;
  paper_shape.interpolation_lanes = 6;
  const auto report = estimator.utilisation_report(paper_shape, 5);
  EXPECT_NE(report.find("FITS"), std::string::npos);
  EXPECT_NE(report.find("LUT"), std::string::npos);
  const auto report6 = estimator.utilisation_report(paper_shape, 6);
  EXPECT_NE(report6.find("DOES NOT FIT"), std::string::npos);
}

// --- power ------------------------------------------------------------------------

TEST(Power, FpgaModelMatchesTableII) {
  const FpgaPowerModel model;
  // Paper: 35.86 / 35.79 / 37.38 W at 1/2/5 engines; affine fit within 0.5 W.
  EXPECT_NEAR(model.watts(1), 35.86, 0.5);
  EXPECT_NEAR(model.watts(2), 35.79, 0.5);
  EXPECT_NEAR(model.watts(5), 37.38, 0.5);
}

TEST(Power, FpgaPowerNearlyFlatInEngines) {
  const FpgaPowerModel model;
  // Adding four engines costs < 10% more power (the paper's key point).
  EXPECT_LT(model.watts(5) / model.watts(1), 1.10);
}

TEST(Power, CpuModelMatchesTableII) {
  const CpuPowerModel model;
  EXPECT_NEAR(model.watts(24), 175.39, 1.0);
}

TEST(Power, PaperPowerRatioReproduced) {
  const FpgaPowerModel fpga;
  const CpuPowerModel cpu;
  // "the FPGA running with five engines draws around 4.7 times less power".
  EXPECT_NEAR(cpu.watts(24) / fpga.watts(5), 4.7, 0.15);
}

TEST(Power, EfficiencyMetric) {
  EXPECT_DOUBLE_EQ(power_efficiency(1000.0, 40.0), 25.0);
  EXPECT_THROW(power_efficiency(1.0, 0.0), Error);
}

// --- interconnect --------------------------------------------------------------------

TEST(Interconnect, TransferTimeScalesWithBytes) {
  const Interconnect pcie;
  const double small = pcie.transfer_seconds(1024);
  const double large = pcie.transfer_seconds(1024 * 1024);
  EXPECT_GT(large, small);
  EXPECT_EQ(pcie.transfer_seconds(0), 0.0);
  // Latency floor dominates tiny transfers.
  EXPECT_GT(small, 9.0e-6);
}

TEST(Interconnect, DispatchCostPerInvocation) {
  const Interconnect pcie;
  EXPECT_DOUBLE_EQ(pcie.dispatch_seconds(10),
                   10 * pcie.config().kernel_dispatch_s);
}

TEST(Interconnect, ArbitrationOnlyWithMultipleEngines) {
  const Interconnect pcie;
  EXPECT_EQ(pcie.arbitration_seconds(1000, 1), 0.0);
  const double two = pcie.arbitration_seconds(1000, 2);
  const double five = pcie.arbitration_seconds(1000, 5);
  EXPECT_GT(two, 0.0);
  EXPECT_DOUBLE_EQ(five, 4.0 * two);
}

// --- cost model provenance ------------------------------------------------------------

TEST(CostModel, RestartGapMatchesTableIDerivation) {
  const auto& cost = default_cost_model();
  // The calibration: 1/7368.42 - 1/13298.70 seconds/option at 300 MHz.
  const double gap_s = 1.0 / 7368.42 - 1.0 / 13298.70;
  const double gap_cycles = gap_s * cost.kernel_clock_hz;
  EXPECT_NEAR(static_cast<double>(cost.region_restart_cycles), gap_cycles,
              0.02 * gap_cycles);
}

TEST(CostModel, Listing1CoversAddLatency) {
  const auto& cost = default_cost_model();
  // The number of partial sums must cover the add latency, or the carried
  // dependency re-appears (this is the entire premise of Listing 1).
  EXPECT_GE(cost.listing1_lanes, cost.dadd_latency);
  EXPECT_EQ(cost.baseline_accumulation_ii, cost.dadd_latency);
  EXPECT_EQ(cost.optimised_accumulation_ii, 1u);
}

TEST(CostModel, UramFeedIsDualPorted) {
  EXPECT_DOUBLE_EQ(default_cost_model().uram_feed_elements_per_cycle, 2.0);
}

}  // namespace
}  // namespace cdsflow::fpga
