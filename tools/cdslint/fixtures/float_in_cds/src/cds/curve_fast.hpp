// Seeded violation for cdslint's float-in-cds rule: a single-precision
// member in a pricing path outside the allowlisted precision.* emulation.
#pragma once

namespace fixture {

struct CurvePoint {
  double tenor = 0.0;
  float rate = 0.0;  // the seeded violation
};

}  // namespace fixture
