/// \file codec.hpp
/// Wire codec of the multi-tenant pricing service and the cluster plane:
/// length-prefixed compact binary frames, the first trust boundary in the
/// system that untrusted bytes cross.
///
/// The normative wire specification lives in docs/PROTOCOL.md; this header
/// is its implementation. Every frame is a fixed 20-byte header followed by
/// a typed payload:
///
///   offset  size  field
///        0     4  magic          0x43445357 ("CDSW", little-endian u32)
///        4     1  version        kWireVersion (reject everything else)
///        5     1  type           FrameType
///        6     2  reserved       must be 0
///        8     4  tenant         tenant id (registry key; 0 is invalid for
///                                service frames, required 0 for cluster
///                                frames -- the cluster plane is tenantless)
///       12     4  request        request id (echoed in responses; 0 for
///                                fire-and-forget quote updates; the shard
///                                index for kShardPrice/kShardResult)
///       16     4  payload_bytes  length of the payload that follows
///
/// Payloads (all integers little-endian, doubles as IEEE-754 bit patterns):
///
///   kQuoteUpdate   u32 knot, f64 rate                          (12 bytes)
///   kPriceRequest  u32 count, count x { i32 id, f64 maturity,
///   kRiskRequest     f64 frequency, f64 recovery }      (4 + 28 * count)
///   kResult        u8 status (0 on-time, 1 deferred), u8 kind
///                  (0 price, 1 risk), u16 reserved, u32 count,
///                  count x price row { i32 id, f64 spread }  or
///                  count x risk row  { i32 id, f64 spread, f64 cs01,
///                    f64 ir01, f64 rec01, f64 jtd }
///   kReject        u8 reason (RejectReason), u8 reserved,
///                  u16 detail_len, detail_len bytes of UTF-8 detail
///   kNodeProbe     empty (a probe request), or the worker's reply:
///                  u32 lanes, f64 options_per_second, f64 setup_seconds,
///                  f64 watts, u16 name_len, u16 reserved,
///                  name_len bytes of engine name           (32 + name_len)
///   kShardPrice    u8 kind (0 price, 1 risk), u8 reserved, u16 reserved,
///                  u32 count, count x option row as above (8 + 28 * count)
///   kShardResult   u8 status (must be 0), u8 kind (0 price, 1 risk),
///                  u16 reserved, u32 count, f64 engine_seconds,
///                  count x price/risk row as above     (16 + row * count)
///
/// Every length field has an explicit bound checked *before* any
/// allocation: payload_bytes <= kMaxPayloadBytes as soon as the header is
/// complete, count <= kMaxOptionsPerRequest, detail_len <=
/// kMaxRejectDetailBytes, name_len <= kMaxEngineNameBytes, and the payload
/// size must equal the size its count implies exactly (no trailing bytes).
/// The decoder is incremental (FrameReader): bytes may arrive in arbitrary
/// splits across poll() wakeups, including one byte at a time. A malformed
/// stream poisons the reader -- after the first framing error nothing
/// behind it can be trusted, so the connection must be torn down (the
/// server sends a kMalformed reject first).
///
/// The codec is structural only: it checks shape and bounds, not pricing
/// semantics (option ranges, finite doubles, known tenants) -- those are
/// service-layer admission/validation concerns (src/service/service.hpp)
/// and cluster-worker concerns (src/cluster/worker.hpp).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cds/risk.hpp"
#include "cds/types.hpp"

namespace cdsflow::net {

inline constexpr std::uint32_t kWireMagic = 0x43445357u;  // "CDSW"
/// Version 2 added the cluster-plane frames (kNodeProbe / kShardPrice /
/// kShardResult) and grew kMaxPayloadBytes for the shard-result preamble.
/// Negotiation is strict equality: a decoder poisons on any other version
/// byte (docs/PROTOCOL.md, "Version negotiation").
inline constexpr std::uint8_t kWireVersion = 2;
inline constexpr std::size_t kHeaderBytes = 20;

/// Hard upper bounds on every wire length field.
inline constexpr std::size_t kMaxOptionsPerRequest = 4096;
inline constexpr std::size_t kMaxRejectDetailBytes = 256;
inline constexpr std::size_t kMaxEngineNameBytes = 64;
/// Largest legal payload: a shard result in risk mode at
/// kMaxOptionsPerRequest rows (16-byte shard-result preamble + 44-byte risk
/// rows).
inline constexpr std::size_t kMaxPayloadBytes =
    16 + 44 * kMaxOptionsPerRequest;

enum class FrameType : std::uint8_t {
  kQuoteUpdate = 1,   ///< hazard curve knot moved (fire-and-forget)
  kPriceRequest = 2,  ///< price a micro-batch of options
  kRiskRequest = 3,   ///< price + per-option Greeks
  kResult = 4,        ///< response to an admitted request
  kReject = 5,        ///< machine-readable refusal
  kNodeProbe = 6,     ///< coordinator<->worker capability probe
  kShardPrice = 7,    ///< coordinator -> worker: price one shard
  kShardResult = 8,   ///< worker -> coordinator: one shard's results
};

/// Machine-readable reject reasons (the wire contract; never renumber).
enum class RejectReason : std::uint8_t {
  kMalformed = 1,      ///< frame or payload failed structural validation
  kOverload = 2,       ///< admission control shed the request
  kUnknownTenant = 3,  ///< tenant id not in the registry
  kWrongMode = 4,      ///< risk request to a price tenant or vice versa
};

const char* to_string(FrameType type);
const char* to_string(RejectReason reason);

/// Result status byte: whether admission met the deadline class or admitted
/// the request late (deferred).
inline constexpr std::uint8_t kResultOnTime = 0;
inline constexpr std::uint8_t kResultDeferred = 1;

/// One decoded frame. Which fields are meaningful depends on `type` (flat
/// struct rather than a variant so handling code stays simple).
struct Frame {
  FrameType type = FrameType::kQuoteUpdate;
  std::uint32_t tenant = 0;
  std::uint32_t request = 0;

  // kQuoteUpdate
  std::uint32_t knot = 0;
  double rate = 0.0;

  // kPriceRequest / kRiskRequest
  std::vector<cds::CdsOption> options;

  // kResult
  std::uint8_t status = kResultOnTime;
  bool risk = false;
  std::vector<cds::SpreadResult> results;
  std::vector<cds::Sensitivities> greeks;  ///< parallel to results when risk

  // kReject
  RejectReason reason = RejectReason::kMalformed;
  std::string detail;

  // kNodeProbe: false for an (empty) probe request, true for a worker's
  // reply, in which case the capability fields below are filled.
  bool probe_reply = false;
  std::uint32_t lanes = 0;
  double ops_per_second = 0.0;
  double setup_seconds = 0.0;
  double watts = 0.0;
  std::string engine;

  // kShardPrice reuses `options` and `risk`; the shard index travels in the
  // header `request` field. kShardResult reuses `results`/`greeks`/`risk`
  // plus the worker-side engine-reported time below.
  double engine_seconds = 0.0;
};

// --- encoders ---------------------------------------------------------------
// Each returns header + payload, ready to write to the socket. Throws
// cdsflow::Error when a bound would be violated (count, detail length) --
// the encoder enforces the same limits the decoder rejects.
std::vector<std::uint8_t> encode_quote_update(std::uint32_t tenant,
                                              std::uint32_t knot, double rate);
std::vector<std::uint8_t> encode_price_request(
    std::uint32_t tenant, std::uint32_t request,
    const std::vector<cds::CdsOption>& options, bool risk = false);
std::vector<std::uint8_t> encode_result(
    std::uint32_t tenant, std::uint32_t request, std::uint8_t status,
    const std::vector<cds::SpreadResult>& results,
    const std::vector<cds::Sensitivities>& greeks = {});
std::vector<std::uint8_t> encode_reject(std::uint32_t tenant,
                                        std::uint32_t request,
                                        RejectReason reason,
                                        const std::string& detail = "");

// Cluster-plane encoders (tenant is always 0 on the wire -- the decoder
// rejects cluster frames carrying a tenant id).
std::vector<std::uint8_t> encode_node_probe(std::uint32_t request = 0);
std::vector<std::uint8_t> encode_node_info(std::uint32_t request,
                                           std::uint32_t lanes,
                                           double options_per_second,
                                           double setup_seconds, double watts,
                                           const std::string& engine_name);
std::vector<std::uint8_t> encode_shard_price(
    std::uint32_t shard, const std::vector<cds::CdsOption>& options,
    bool risk = false);
std::vector<std::uint8_t> encode_shard_result(
    std::uint32_t shard, double engine_seconds,
    const std::vector<cds::SpreadResult>& results,
    const std::vector<cds::Sensitivities>& greeks = {});

/// Exact on-wire size (header + payload) of a shard-price / shard-result
/// frame for `n_options` rows -- the byte counts the cluster planner's link
/// model charges (engines/planner.hpp, ClusterLinkModel).
std::size_t shard_price_frame_bytes(std::size_t n_options);
std::size_t shard_result_frame_bytes(std::size_t n_options, bool risk);

/// Incremental frame decoder for one connection's byte stream.
///
/// feed() accepts arbitrary chunks (any split, including byte-at-a-time);
/// next() hands back completed frames in stream order. The first framing
/// violation poisons the reader: failed() turns true, error() explains,
/// further feed() calls return false and discard their bytes, and next()
/// returns frames decoded *before* the poison point only. Memory is bounded
/// by kMaxPayloadBytes + feed chunk size: an oversized payload_bytes is
/// rejected as soon as the header completes, before any payload buffering.
class FrameReader {
 public:
  FrameReader() = default;

  /// Appends raw bytes. Returns false when the reader is poisoned.
  bool feed(const std::uint8_t* data, std::size_t n);

  /// Next completed frame in stream order, if any.
  std::optional<Frame> next();

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  /// Bytes buffered but not yet decoded (diagnostics).
  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  void poison(std::string why);

  /// Bounds gates for the decode switch. Every variable-length field a
  /// frame carries (row counts, name/detail lengths) must be vetted
  /// through one of these before any byte it sizes is dereferenced --
  /// cdslint's codec-bounds rule rejects a decode-path length read that
  /// is not preceded by a require_ gate. Each returns true when the
  /// constraint holds and poisons the stream (returning false) otherwise.
  ///
  /// `payload_bytes` itself is safe to pass before validation: feed()
  /// only enters the switch once the whole payload is buffered, so the
  /// gates bound *interpretation*, not buffering.
  bool require_payload_at_least(std::size_t payload_bytes, std::size_t need,
                                const char* frame_name);
  bool require_payload_exact(std::size_t payload_bytes, std::size_t want,
                             const char* what);
  bool require_count_between(std::uint64_t count, std::uint64_t min,
                             std::uint64_t max, const char* what);

  std::vector<std::uint8_t> buffer_;
  std::vector<Frame> ready_;
  std::size_t ready_next_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace cdsflow::net
