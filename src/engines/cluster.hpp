/// \file cluster.hpp
/// Cluster-level scaling: many accelerator cards across HPC nodes.
///
/// The paper's motivation is "batch processing of financial data on HPC
/// machines" (Sec. I) and it saturates a single U280; the obvious next rung
/// -- and the venue's (IEEE CLUSTER) natural question -- is multi-card
/// scaling. Options partition across cards exactly as they partition across
/// engines within a card (no inter-option dependencies); each card runs an
/// independent MultiEngine with its own PCIe link, so cards scale almost
/// perfectly, degraded only by the host-side fan-out/collection cost per
/// card modelled here.

#pragma once

#include "cds/curve.hpp"
#include "engines/engine.hpp"
#include "engines/multi_engine.hpp"

namespace cdsflow::engine {

struct ClusterConfig {
  /// Cards (each an Alveo U280 with `per_card.n_engines` engines).
  unsigned n_cards = 2;
  /// Per-card configuration (engines per card, device fit check, etc.).
  MultiEngineConfig per_card;
  /// Host-side fan-out/collection overhead per card beyond the first:
  /// scatter/gather of option chunks over independent PCIe links plus the
  /// batch barrier (order ~100 us of host work per card).
  double host_fanout_s_per_extra_card = 100.0e-6;
};

class ClusterEngine final : public Engine {
 public:
  ClusterEngine(cds::TermStructure interest, cds::TermStructure hazard,
                ClusterConfig config);

  std::string name() const override;
  std::string description() const override;

  PricingRun price(const std::vector<cds::CdsOption>& options) override;

  unsigned n_cards() const { return config_.n_cards; }
  unsigned total_engines() const {
    return config_.n_cards * config_.per_card.n_engines;
  }

 private:
  cds::TermStructure interest_;
  cds::TermStructure hazard_;
  ClusterConfig config_;
};

}  // namespace cdsflow::engine
