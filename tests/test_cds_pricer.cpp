/// \file test_cds_pricer.cpp
/// Unit tests for the legs and the golden pricer: closed-form flat-curve
/// checks (the credit-triangle approximation spread ~ (1-R)*h), leg signs,
/// discount factors, and financial monotonicity properties.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cds/legs.hpp"
#include "cds/pricer.hpp"
#include "common/error.hpp"

namespace cdsflow::cds {
namespace {

TermStructure flat_curve(double rate, std::size_t points = 128,
                         double span = 30.0) {
  std::vector<double> times(points), values(points, rate);
  for (std::size_t i = 0; i < points; ++i) {
    times[i] = (static_cast<double>(i + 1) / static_cast<double>(points)) * span;
  }
  return TermStructure(std::move(times), std::move(values));
}

CdsOption option(double maturity = 5.0, double freq = 4.0,
                 double recovery = 0.4) {
  return {.id = 7,
          .maturity_years = maturity,
          .payment_frequency = freq,
          .recovery_rate = recovery};
}

TEST(Legs, DiscountFactorFlatRate) {
  const auto interest = flat_curve(0.02);
  EXPECT_NEAR(discount_factor(interest, 3.0), std::exp(-0.02 * 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(discount_factor(interest, 0.0), 1.0);
  EXPECT_THROW(discount_factor(interest, -1.0), Error);
}

TEST(Legs, TermsSignsAndMagnitudes) {
  const auto interest = flat_curve(0.02);
  const LegTerms t = leg_terms(interest, 0.99, 0.98, 1.0, 0.25);
  EXPECT_GT(t.premium, 0.0);
  EXPECT_GT(t.accrual, 0.0);
  EXPECT_GT(t.payoff, 0.0);
  // Accrual is half a period of the payoff premium base.
  EXPECT_NEAR(t.accrual, 0.5 * t.payoff * 0.25, 1e-15);
}

TEST(Pricer, CreditTriangleOnFlatCurves) {
  // With flat hazard h, flat rates, and recovery R, the par spread is close
  // to the credit triangle (1-R)*h (exact in continuous time; quarterly
  // premiums give a small correction).
  const ReferencePricer pricer(flat_curve(0.02), flat_curve(0.03));
  const double spread = pricer.spread_bps(option(5.0, 4.0, 0.40));
  const double triangle = (1.0 - 0.40) * 0.03 * kBasisPointsPerUnit;  // 180
  EXPECT_NEAR(spread, triangle, 0.02 * triangle);
}

TEST(Pricer, CreditTriangleAccuracyImprovesWithFrequency) {
  const ReferencePricer pricer(flat_curve(0.0001), flat_curve(0.02));
  const double triangle = (1.0 - 0.4) * 0.02 * kBasisPointsPerUnit;
  const double annual =
      std::fabs(pricer.spread_bps(option(5.0, 1.0)) - triangle);
  const double monthly =
      std::fabs(pricer.spread_bps(option(5.0, 12.0)) - triangle);
  EXPECT_LT(monthly, annual);
}

TEST(Pricer, ZeroHazardGivesZeroSpread) {
  const ReferencePricer pricer(flat_curve(0.02), flat_curve(1e-12));
  EXPECT_NEAR(pricer.spread_bps(option()), 0.0, 1e-4);
}

TEST(Pricer, BreakdownLegsArePositiveAndConsistent) {
  const ReferencePricer pricer(flat_curve(0.02), flat_curve(0.03));
  const auto b = pricer.breakdown(option());
  EXPECT_GT(b.premium_leg, 0.0);
  EXPECT_GT(b.accrual_leg, 0.0);
  EXPECT_GT(b.protection_leg, 0.0);
  EXPECT_LT(b.accrual_leg, b.premium_leg);  // accrual is a small correction
  EXPECT_NEAR(b.spread_bps,
              kBasisPointsPerUnit * b.protection_leg /
                  (b.premium_leg + b.accrual_leg),
              1e-9);
}

TEST(Pricer, SpreadIncreasesWithHazard) {
  const auto interest = flat_curve(0.02);
  double prev = 0.0;
  for (const double h : {0.005, 0.01, 0.02, 0.04, 0.08, 0.16}) {
    const ReferencePricer pricer(interest, flat_curve(h));
    const double s = pricer.spread_bps(option());
    EXPECT_GT(s, prev) << "h=" << h;
    prev = s;
  }
}

TEST(Pricer, SpreadDecreasesWithRecovery) {
  const ReferencePricer pricer(flat_curve(0.02), flat_curve(0.03));
  double prev = 1e9;
  for (const double r : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    const double s = pricer.spread_bps(option(5.0, 4.0, r));
    EXPECT_LT(s, prev) << "R=" << r;
    prev = s;
  }
}

TEST(Pricer, SpreadScalesLinearlyInOneMinusRecovery) {
  const ReferencePricer pricer(flat_curve(0.02), flat_curve(0.03));
  const double s0 = pricer.spread_bps(option(5.0, 4.0, 0.0));
  const double s50 = pricer.spread_bps(option(5.0, 4.0, 0.5));
  EXPECT_NEAR(s50 / s0, 0.5, 1e-9);  // protection scales by (1-R), legs don't
}

TEST(Pricer, FlatCurvesSpreadNearlyTenorIndependent) {
  // With flat hazard and flat rates, par spreads are almost flat across
  // maturities (small accrual/discounting second-order effects).
  const ReferencePricer pricer(flat_curve(0.02), flat_curve(0.03));
  const double s2 = pricer.spread_bps(option(2.0));
  const double s10 = pricer.spread_bps(option(10.0));
  EXPECT_NEAR(s2, s10, 0.02 * s2);
}

TEST(Pricer, HigherRatesLowerBothLegs) {
  const auto hazard = flat_curve(0.03);
  const ReferencePricer low(flat_curve(0.01), hazard);
  const ReferencePricer high(flat_curve(0.10), hazard);
  const auto bl = low.breakdown(option());
  const auto bh = high.breakdown(option());
  EXPECT_LT(bh.premium_leg, bl.premium_leg);
  EXPECT_LT(bh.protection_leg, bl.protection_leg);
}

TEST(Pricer, PortfolioPreservesOrderAndIds) {
  const ReferencePricer pricer(flat_curve(0.02), flat_curve(0.03));
  std::vector<CdsOption> book;
  for (int i = 0; i < 5; ++i) {
    auto o = option(1.0 + i);
    o.id = 100 - i;
    book.push_back(o);
  }
  const auto results = pricer.price(book);
  ASSERT_EQ(results.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].id, 100 - i);
  }
}

TEST(Pricer, CombineSpreadRejectsNonPositiveAnnuity) {
  EXPECT_THROW(combine_spread_bps(0.0, 0.0, 1.0, 0.4), Error);
  EXPECT_THROW(combine_spread_bps(-1.0, 0.5, 1.0, 0.4), Error);
}

TEST(Pricer, OptionValidation) {
  const ReferencePricer pricer(flat_curve(0.02), flat_curve(0.03));
  CdsOption bad = option();
  bad.maturity_years = -1.0;
  EXPECT_THROW(pricer.spread_bps(bad), Error);
  bad = option();
  bad.recovery_rate = 1.5;
  EXPECT_THROW(pricer.spread_bps(bad), Error);
}

TEST(Pricer, NegativeInterestRatesPriceCleanly) {
  // Negative-rate regimes (EUR 2015-2022) are routine inputs: discount
  // factors exceed 1 but the model stays well-defined.
  std::vector<double> times, values;
  for (int i = 1; i <= 64; ++i) {
    times.push_back(0.5 * i);
    values.push_back(-0.005);  // -50 bps everywhere
  }
  const TermStructure negative(times, values);
  const ReferencePricer pricer(negative, flat_curve(0.03));
  const double spread = pricer.spread_bps(option());
  EXPECT_GT(spread, 0.0);
  EXPECT_TRUE(std::isfinite(spread));
  EXPECT_GT(discount_factor(negative, 5.0), 1.0);
}

TEST(Pricer, VeryHighHazardStillBounded) {
  // 80% annual hazard: survival collapses fast, spread approaches the cap
  // (1-R) * h at the credit triangle but must remain finite/positive.
  const ReferencePricer pricer(flat_curve(0.02), flat_curve(0.8));
  const double spread = pricer.spread_bps(option(5.0, 4.0, 0.4));
  EXPECT_GT(spread, 1000.0);
  EXPECT_TRUE(std::isfinite(spread));
}

TEST(Pricer, ToStringMentionsFields) {
  const std::string s = to_string(option());
  EXPECT_NE(s.find("id=7"), std::string::npos);
  EXPECT_NE(s.find("maturity=5"), std::string::npos);
}

}  // namespace
}  // namespace cdsflow::cds
