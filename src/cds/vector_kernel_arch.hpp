/// \file vector_kernel_arch.hpp
/// Internal interface between the vector-kernel dispatcher
/// (vector_kernel.cpp) and the per-architecture translation units
/// (vector_kernel_avx2.cpp / vector_kernel_avx512.cpp).
///
/// The arch TUs are compiled with -mavx2/-mavx512* flags, so they must not
/// instantiate inline functions from common headers (a comdat copy built
/// with wider ISA flags could be the one the linker keeps, crashing hosts
/// without that ISA). Everything crosses this boundary as raw pointers and
/// sizes; the dispatcher unpacks HazardPrefix / TermStructure / TimePoint
/// spans and handles the scalar tails, and the arch entry points require
/// n to be a multiple of the lane width.

#pragma once

#include <cstddef>
#include <cstdint>

namespace cdsflow::cds::simd {

/// Bucketed knot-search acceleration table (optional: buckets == nullptr
/// makes the arch kernels fall back to the branchless binary search).
///
/// The dispatcher builds it per call when the point count justifies the
/// O(n_buckets) build (vector_kernel.cpp's build_search_lut): a uniform
/// grid of
/// `n_buckets` buckets over [t0, t0 + n_buckets * width] whose width is at
/// most *half* the smallest knot gap, where buckets[k] is the exact
/// std::lower_bound (or std::upper_bound, per table) index of the bucket's
/// anchor `fma(k, width, t0)`. A lane query re-derives its exact bucket
/// with the same fma anchors and then needs at most ONE masked advance:
/// a half-gap bucket can hold at most one knot, so the bound index of any
/// t inside bucket k is buckets[k] or buckets[k] + 1. The result is the
/// exact scalar search index -- bit-identical bracket choice, ~10 data-
/// dependent gathers per lane replaced by 2.
struct SearchLut {
  const std::int64_t* buckets = nullptr;
  double t0 = 0.0;
  double width = 0.0;
  double inv_width = 0.0;
  std::int64_t n_buckets = 0;
};

/// TermStructure, flattened (times/values SoA; size >= 2 -- single-knot
/// curves are degenerate constants the dispatcher handles itself).
struct CurveView {
  const double* times;
  const double* values;
  std::size_t size;
  /// Optional upper_bound table over `times`.
  SearchLut lut;
};

/// HazardPrefix, flattened.
struct PrefixView {
  const double* times;
  const double* rates;
  const double* lambda;
  std::size_t size;
  /// Optional lower_bound table over `times`.
  SearchLut lut;
};

}  // namespace cdsflow::cds::simd

// Each arch namespace implements the same five kernels (see
// vector_kernel_impl.hpp for the single shared implementation):
//
//   survival_column:  q_out[i] = exp(-Lambda(t_i)); ts strided by
//                     `t_stride` doubles (TimePoint arrays pass 2).
//   discount_column:  d_out[i] = exp(-interpolate_fast(t_i) * t_i).
//   combine_spreads:  spread_out[i * out_stride] from the recovery rates
//                     (strided AoS doubles), grid ids and grid sums.
//   exp_columns:      out[i] = exp_pd(xs[i]).
//   sweep_survival_block: one lane-width group of scenarios at once,
//                     scenario-major (see the declaration comment below).
//   sweep_leg_sums_block: the leg-sum reduction of one grid for one
//                     lane-width group of scenarios (see below).

// sweep_survival_block contract (scenario-sweep fast path, one group of
// exactly W = lane-width scenarios, scenario-minor within a W-wide row):
//
//   rates_T:  n_knots rows of W doubles; rates_T[j*W + w] is scenario w's
//             hazard rate on knot segment j.
//   knot_dt:  n_knots scalars; knot_dt[j] = tau_j - tau_{j-1} (tau_{-1}=0),
//             precomputed by the dispatcher with scalar subtractions.
//   lambda_T: (n_knots + 1) rows of W doubles, written by the kernel. Row 0
//             must be pre-zeroed by the caller; row j+1 becomes
//             Lambda(tau_j) per scenario, accumulated in exactly
//             make_hazard_prefix's order (plain mul + add, no fma).
//   base_row / rate_row: per schedule point i, the lambda_T row holding the
//             point's prefix base (the scalar lower_bound index j; row 0 is
//             the j==0 zero base, row n_knots the beyond-last-knot base) and
//             the rates_T row holding its segment rate (min(j, n_knots-1)).
//   point_dt: per point, t_i - seg_begin_i precomputed scalar.
//   q_T:      n_points rows of W doubles; q_T[i*W + w] =
//             exp_pd(-(lambda_base + rate * point_dt)) -- element-wise the
//             identical IEEE expression integrated_hazard_prefix +
//             survival_column evaluate, so each scenario's column is
//             bit-identical to a one-scenario tabulation at the same level.
//
// sweep_leg_sums_block contract (one grid x one W-wide scenario group):
//
//   dts:      the grid's n_points accrual intervals (TimePoint::dt).
//   discount: the grid's n_points shared discount column (broadcast -- a
//             hazard sweep never moves D).
//   q_T:      n_points rows of W doubles, the grid's slice of the group's
//             survival columns (scenario-minor, sweep_survival_block's
//             layout).
//   annuity_out / payoff_out: W doubles each. Per lane, the kernel runs
//             reduce_leg_sums' exact serial accumulation -- q_prev starts
//             at 1, dq = q_prev - q, premium += (d*q)*dt,
//             accrual += ((0.5*d)*dq)*dt, payoff += d*dq, all plain
//             mul/add -- then annuity = premium + accrual
//             (checked_grid_sums' add). Bit-identical per lane to the
//             scalar walk, so grouping/sharding never moves a sum.
#if defined(CDSFLOW_HAVE_AVX2)
namespace cdsflow::cds::simd::detail_avx2 {
void survival_column(const PrefixView& prefix, const double* ts,
                     std::size_t t_stride, std::size_t n, double* q_out);
void discount_column(const CurveView& curve, const double* ts,
                     std::size_t t_stride, std::size_t n, double* d_out);
void combine_spreads(const double* recovery, std::size_t rec_stride,
                     const std::uint32_t* grid_of, const double* annuity,
                     const double* payoff, std::size_t n, double* spread_out,
                     std::size_t out_stride);
void exp_columns(const double* xs, std::size_t n, double* out);
void sweep_survival_block(const double* rates_T, std::size_t n_knots,
                          const double* knot_dt, double* lambda_T,
                          const double* point_dt,
                          const std::int64_t* base_row,
                          const std::int64_t* rate_row, std::size_t n_points,
                          double* q_T);
void sweep_leg_sums_block(const double* dts, const double* discount,
                          const double* q_T, std::size_t n_points,
                          double* annuity_out, double* payoff_out);
}  // namespace cdsflow::cds::simd::detail_avx2
#endif

#if defined(CDSFLOW_HAVE_AVX512)
namespace cdsflow::cds::simd::detail_avx512 {
void survival_column(const PrefixView& prefix, const double* ts,
                     std::size_t t_stride, std::size_t n, double* q_out);
void discount_column(const CurveView& curve, const double* ts,
                     std::size_t t_stride, std::size_t n, double* d_out);
void combine_spreads(const double* recovery, std::size_t rec_stride,
                     const std::uint32_t* grid_of, const double* annuity,
                     const double* payoff, std::size_t n, double* spread_out,
                     std::size_t out_stride);
void exp_columns(const double* xs, std::size_t n, double* out);
void sweep_survival_block(const double* rates_T, std::size_t n_knots,
                          const double* knot_dt, double* lambda_T,
                          const double* point_dt,
                          const std::int64_t* base_row,
                          const std::int64_t* rate_row, std::size_t n_points,
                          double* q_T);
void sweep_leg_sums_block(const double* dts, const double* discount,
                          const double* q_T, std::size_t n_points,
                          double* annuity_out, double* payoff_out);
}  // namespace cdsflow::cds::simd::detail_avx512
#endif
