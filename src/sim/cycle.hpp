/// \file cycle.hpp
/// The simulator's notion of time: an integer FPGA kernel clock cycle.

#pragma once

#include <cstdint>
#include <limits>

namespace cdsflow::sim {

/// A kernel clock cycle index. 64 bits: at 300 MHz this wraps after ~2000
/// years of simulated time.
using Cycle = std::uint64_t;

/// Sentinel returned by Process::next_wake when a process has no internal
/// timer and can only be unblocked by channel activity (or is finished).
inline constexpr Cycle kNoWake = std::numeric_limits<Cycle>::max();

/// Converts a cycle count at `clock_hz` to seconds.
inline double cycles_to_seconds(Cycle cycles, double clock_hz) {
  return static_cast<double>(cycles) / clock_hz;
}

/// Converts seconds at `clock_hz` to a (rounded-up) cycle count.
inline Cycle seconds_to_cycles(double seconds, double clock_hz) {
  const double c = seconds * clock_hz;
  return c <= 0.0 ? 0 : static_cast<Cycle>(c + 0.5);
}

}  // namespace cdsflow::sim
