/// \file admission.hpp
/// Deadline-class admission control for the multi-tenant pricing service.
///
/// The planner's probe->fit pipeline (engines/planner.hpp) prices a back-end
/// as seconds(n) = setup + n / throughput; the runtime schedules work on the
/// earliest-free lane (runtime::list_schedule_makespan). Admission control
/// is those two models run *forward* at request time: given the calibrated
/// affine fit of the engine actually serving the tenant pool and the lane
/// pool's current projected occupancy (engine::CompletionProjector), a
/// request's completion time is projected before it is enqueued, and
///
///   projected <= arrival + deadline   -> kAdmit  (booked; on-time result)
///   projected <= arrival + defer      -> kDefer  (booked; result flagged
///                                        deferred -- priced late, honestly)
///   otherwise                         -> kShed   (kOverload reject; books
///                                        nothing, so capacity is never
///                                        consumed by work that will not
///                                        be done)
///
/// The boundary case projected == arrival + deadline is admitted: the model
/// says the deadline is met exactly, and a <= comparison keeps the golden
/// transcripts stable when fits and deadlines are chosen to land on exact
/// binary-representable values (tests/test_admission.cpp pins this).
///
/// The controller is deliberately clock-free -- the caller supplies every
/// arrival time (the service uses seconds since server start; tests use a
/// script). Decisions are pure arithmetic over the fit and the booking
/// history, so a fixed fit + a scripted burst produce a deterministic
/// admit/defer/shed transcript, replayable in CI.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engines/planner.hpp"

namespace cdsflow::service {

/// A latency contract: result due within `deadline_seconds` of arrival;
/// degraded (deferred) service acceptable up to `defer_seconds`.
struct DeadlineClass {
  std::string name;
  double deadline_seconds = 0.0;
  double defer_seconds = 0.0;
};

/// The standard service classes (README documents the same table):
///   interactive  5 ms deadline /  20 ms defer ceiling
///   standard    50 ms deadline / 200 ms defer ceiling
///   batch        2 s  deadline /   8 s  defer ceiling
const std::vector<DeadlineClass>& standard_deadline_classes();

/// Looks a class up by name among the standard ones.
std::optional<DeadlineClass> find_deadline_class(const std::string& name);

enum class AdmissionDecision : std::uint8_t {
  kAdmit = 0,  ///< booked; projected to meet the deadline
  kDefer = 1,  ///< booked; projected to miss the deadline but make defer
  kShed = 2,   ///< refused (kOverload); nothing booked
};

const char* to_string(AdmissionDecision decision);

/// One admission decision, in decision order -- the transcript the golden
/// tests replay.
struct AdmissionRecord {
  std::uint32_t tenant = 0;
  std::uint32_t request = 0;
  std::size_t n_options = 0;
  double arrival_seconds = 0.0;
  /// Completion the projector quoted (for kShed: the completion that was
  /// refused).
  double projected_seconds = 0.0;
  /// Absolute deadline (arrival + class deadline) the projection was judged
  /// against.
  double deadline_seconds = 0.0;
  AdmissionDecision decision = AdmissionDecision::kAdmit;
};

/// Projects each request against a fixed per-lane affine fit and the booked
/// occupancy; see the file header for the decision rule. Not thread-safe --
/// the service calls it from its event-loop thread only.
class AdmissionController {
 public:
  /// `fit` is the affine cost model of one serving lane (typically from
  /// engine::fit_backend_model over probes of the tenant pool's engine);
  /// `lanes` is the pool's lane count.
  AdmissionController(engine::BackendCandidate fit, unsigned lanes);

  /// Decides (and for admit/defer books) one request of `n_options`.
  AdmissionDecision decide(std::uint32_t tenant, std::uint32_t request,
                           std::size_t n_options, double arrival_seconds,
                           const DeadlineClass& klass);

  /// Projected cost of one request under the fit (setup + n/throughput).
  double task_seconds(std::size_t n_options) const {
    return fit_.seconds_for(n_options);
  }

  const std::vector<AdmissionRecord>& transcript() const { return records_; }
  const engine::BackendCandidate& fit() const { return fit_; }
  const engine::CompletionProjector& projector() const { return projector_; }

 private:
  engine::BackendCandidate fit_;
  engine::CompletionProjector projector_;
  std::vector<AdmissionRecord> records_;
};

}  // namespace cdsflow::service
