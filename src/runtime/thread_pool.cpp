#include "runtime/thread_pool.hpp"

#include "common/error.hpp"

namespace cdsflow::runtime {

ThreadPool::ThreadPool(unsigned workers) {
  CDSFLOW_EXPECT(workers > 0, "thread pool needs at least one worker");
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { stop(); }

void ThreadPool::stop() {
  MutexLock stop_lock(stop_mutex_);
  if (joined_) return;
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& t : threads_) t.join();
  joined_ = true;
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    MutexLock lock(mutex_);
    // Fail fast: once stop has begun the workers may already be draining
    // towards exit, and a task enqueued now could sit in the queue forever.
    // Throwing here keeps the contract "every accepted task runs".
    CDSFLOW_EXPECT(!stopping_,
                   "submit() after ThreadPool::stop() began; late submits "
                   "fail fast instead of enqueueing work no worker will run");
    queue_.push_back(std::move(packaged));
  }
  wake_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      UniqueLock lock(mutex_);
      wake_.wait(lock.native(),
                 [this]() CDSFLOW_REQUIRES(mutex_) {
                   return stopping_ || !queue_.empty();
                 });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the matching future
  }
}

}  // namespace cdsflow::runtime
