/// \file bench_ext_cluster.cpp
/// Extension: multi-card scaling -- the HPC rung above the paper's single
/// U280 (its motivating context is batch processing on HPC machines).
///
/// Sweeps 1..8 cards of 5 vectorised engines each and reports throughput,
/// scaling efficiency, modelled power (cards draw independently) and
/// efficiency, projecting where the single-card conclusions go at rack
/// scale.
///
/// Usage: bench_ext_cluster [n_options]

#include <cstdlib>
#include <iostream>

#include "common/format.hpp"
#include "engines/cluster.hpp"
#include "fpga/power.hpp"
#include "report/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2048;

  const auto scenario = workload::paper_scenario(n_options);
  const fpga::FpgaPowerModel card_power;

  std::cout << "== Extension: multi-card cluster scaling ==\n"
            << n_options << " options, 5 vectorised engines per card\n\n";

  report::Table table("Cluster scaling (cards x 5 engines)");
  table.set_columns({"Cards", "Options/s", "Scaling", "Efficiency",
                     "Watts (cards)", "Opts/Watt"});
  double base = 0.0;
  for (const unsigned cards : {1u, 2u, 4u, 8u}) {
    engine::ClusterConfig cfg;
    cfg.n_cards = cards;
    cfg.per_card.n_engines = 5;
    engine::ClusterEngine engine(scenario.interest, scenario.hazard, cfg);
    const auto run = engine.price(scenario.options);
    if (cards == 1) base = run.options_per_second;
    const double watts =
        card_power.watts(5) * static_cast<double>(cards);
    table.add_row({std::to_string(cards),
                   with_thousands(run.options_per_second, 0),
                   fixed(run.options_per_second / base, 2) + "x",
                   fixed(100.0 * run.options_per_second / base / cards, 1) +
                       "%",
                   fixed(watts, 1),
                   fixed(run.options_per_second / watts, 0)});
  }
  std::cout << table.render_text()
            << "\ncards scale near-linearly (independent PCIe links; only "
               "host fan-out and chunk imbalance detract), so the paper's "
               "efficiency conclusions carry to rack scale.\n";
  return 0;
}
