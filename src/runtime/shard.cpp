#include "runtime/shard.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cdsflow::runtime {

std::vector<Shard> plan_shards(std::size_t n_options, std::size_t shard_size) {
  CDSFLOW_EXPECT(shard_size > 0, "shard_size must be positive");
  std::vector<Shard> plan;
  plan.reserve((n_options + shard_size - 1) / shard_size);
  for (std::size_t begin = 0; begin < n_options; begin += shard_size) {
    plan.push_back({plan.size(), begin, std::min(n_options, begin + shard_size)});
  }
  return plan;
}

std::size_t auto_shard_size(std::size_t n_options, unsigned workers) {
  CDSFLOW_EXPECT(workers > 0, "workers must be positive");
  const std::size_t target_shards =
      static_cast<std::size_t>(workers) * 4;  // oversubscribe for balance
  return std::max<std::size_t>(1, (n_options + target_shards - 1) /
                                      target_shards);
}

double list_schedule_makespan(std::span<const double> task_seconds,
                              unsigned lanes,
                              std::vector<unsigned>* lane_of) {
  CDSFLOW_EXPECT(lanes > 0, "list schedule needs at least one lane");
  if (lane_of != nullptr) {
    lane_of->assign(task_seconds.size(), 0);
  }
  std::vector<double> lane_busy_until(lanes, 0.0);
  double makespan = 0.0;
  for (std::size_t i = 0; i < task_seconds.size(); ++i) {
    const auto lane = static_cast<unsigned>(
        std::min_element(lane_busy_until.begin(), lane_busy_until.end()) -
        lane_busy_until.begin());
    if (lane_of != nullptr) (*lane_of)[i] = lane;
    lane_busy_until[lane] += task_seconds[i];
    makespan = std::max(makespan, lane_busy_until[lane]);
  }
  return makespan;
}

}  // namespace cdsflow::runtime
