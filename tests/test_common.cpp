/// \file test_common.cpp
/// Unit tests for the common module: error macros, deterministic RNG,
/// running statistics, histogram, and formatting helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace cdsflow {
namespace {

// --- error ------------------------------------------------------------------

TEST(Error, ExpectPassesOnTrue) {
  EXPECT_NO_THROW(CDSFLOW_EXPECT(1 + 1 == 2, "math works"));
}

TEST(Error, ExpectThrowsWithContext) {
  try {
    CDSFLOW_EXPECT(false, "the message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Error, AssertThrowsAsInternal) {
  try {
    CDSFLOW_ASSERT(false, "bug");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("internal invariant"),
              std::string::npos);
  }
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform01());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 9.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(2.0, 1.0), Error);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 5));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(19);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) {
    counts[rng.weighted_index({1.0, 2.0, 1.0})]++;
  }
  EXPECT_NEAR(counts[1] / 30000.0, 0.5, 0.02);
}

TEST(Rng, WeightedIndexRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_index({}), Error);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), Error);
  EXPECT_THROW(rng.weighted_index({-1.0, 2.0}), Error);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(31);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
  // Same salt => same stream.
  Rng c = parent.split(1);
  Rng d = parent.split(1);
  EXPECT_EQ(c.next_u64(), d.next_u64());
}

// --- stats ---------------------------------------------------------------------

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(4, 8.0);
  h.add(0.1);   // bucket 0
  h.add(3.0);   // bucket 1
  h.add(7.9);   // bucket 3
  h.add(100.0); // clamped to bucket 3
  h.add(-5.0);  // clamped to bucket 0
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_DOUBLE_EQ(h.fraction(3), 0.4);
}

TEST(Histogram, RejectsInvalidConfig) {
  EXPECT_THROW(Histogram(0, 1.0), Error);
  EXPECT_THROW(Histogram(4, 0.0), Error);
}

TEST(Stats, RelativeDifference) {
  EXPECT_DOUBLE_EQ(relative_difference(1.0, 1.0), 0.0);
  EXPECT_NEAR(relative_difference(1.0, 1.1), 0.1 / 1.1, 1e-12);
  EXPECT_EQ(relative_difference(0.0, 0.0), 0.0);
}

// --- format ---------------------------------------------------------------------

TEST(Format, WithThousands) {
  EXPECT_EQ(with_thousands(1234567.891, 2), "1,234,567.89");
  EXPECT_EQ(with_thousands(-1234.5, 1), "-1,234.5");
  EXPECT_EQ(with_thousands(999.0, 0), "999");
  EXPECT_EQ(with_thousands(1000.0, 0), "1,000");
}

TEST(Format, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(-1.0, 0), "-1");
}

TEST(Format, DurationScales) {
  EXPECT_EQ(format_duration_ns(12.0), "12.00 ns");
  EXPECT_EQ(format_duration_ns(1500.0), "1.50 us");
  EXPECT_EQ(format_duration_ns(2.5e6), "2.50 ms");
  EXPECT_EQ(format_duration_ns(3.2e9), "3.20 s");
}

TEST(Format, PercentDelta) {
  EXPECT_EQ(format_percent_delta(110.0, 100.0), "+10.0%");
  EXPECT_EQ(format_percent_delta(90.0, 100.0), "-10.0%");
  EXPECT_EQ(format_percent_delta(1.0, 0.0), "n/a");
}

TEST(Format, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcde", 3), "abcde");  // no truncation
}

TEST(Format, FormatCyclesIncludesDuration) {
  const std::string s = format_cycles(300, 300.0e6);
  EXPECT_NE(s.find("300 cycles"), std::string::npos);
  EXPECT_NE(s.find("us"), std::string::npos);
}

}  // namespace
}  // namespace cdsflow
