/// \file device.hpp
/// FPGA device descriptions.
///
/// The paper targets a Xilinx Alveo U280 (1.3M LUTs, 4.5 MB BRAM, 30 MB
/// UltraRAM, 9024 DSP slices, 8 GB HBM2) with kernels built by Vitis 2020.2.
/// DeviceSpec carries the capacities the resource estimator and the memory
/// models need; alveo_u280() is the calibrated reference device, alveo_u250()
/// exists for what-if exploration in the examples.

#pragma once

#include <cstdint>
#include <string>

namespace cdsflow::fpga {

struct DeviceSpec {
  std::string name;

  // --- programmable logic ------------------------------------------------
  std::uint64_t luts = 0;
  std::uint64_t flip_flops = 0;
  std::uint64_t bram_bytes = 0;
  std::uint64_t uram_bytes = 0;
  std::uint64_t dsp_slices = 0;

  /// Fraction of LUTs a realistic design can occupy before placement and
  /// routing fail timing; large multi-kernel designs on the U280 close
  /// around 60-75% utilisation. The resource fit check applies this ceiling.
  double routable_lut_fraction = 0.70;

  // --- memory system ------------------------------------------------------
  std::uint64_t hbm_bytes = 0;
  double hbm_bandwidth_bytes_per_s = 0.0;
  std::uint64_t dram_bytes = 0;

  /// Bytes per UltraRAM block (URAM288: 288 Kib = 36 KiB) -- the unit on-chip
  /// curve replicas are allocated in.
  std::uint64_t uram_block_bytes = 36 * 1024;

  std::uint64_t uram_blocks() const {
    return uram_block_bytes == 0 ? 0 : uram_bytes / uram_block_bytes;
  }
};

/// Kernel clock configuration. The Vitis default kernel clock for Alveo
/// shells is 300 MHz; the paper does not report deviating from it.
struct ClockConfig {
  double hz = 300.0e6;

  double cycles_to_seconds(std::uint64_t cycles) const {
    return static_cast<double>(cycles) / hz;
  }
  double seconds_to_cycles(double seconds) const { return seconds * hz; }
};

/// The paper's evaluation card.
DeviceSpec alveo_u280();

/// A smaller sibling card (no HBM) for design-space exploration examples.
DeviceSpec alveo_u250();

}  // namespace cdsflow::fpga
