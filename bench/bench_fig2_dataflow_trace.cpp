/// \file bench_fig2_dataflow_trace.cpp
/// Reproduces paper Fig. 2 (structure): "Illustration of our CDS dataflow
/// architecture."
///
/// Fig. 2 is an architecture diagram; the reproduction shows the same
/// property in operation: every stage of the free-running engine is busy
/// *simultaneously* (high mean concurrency, high pairwise overlap), with
/// per-option streams (red arrows) carrying one token per option and
/// per-time-point streams (blue arrows) carrying the schedule tokens.
///
/// Usage: bench_fig2_dataflow_trace [n_options]

#include <cstdlib>
#include <iostream>

#include "common/format.hpp"
#include "engines/interoption_engine.hpp"
#include "sim/trace.hpp"
#include "sim/vcd.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 24;

  auto scenario = workload::paper_scenario(n_options);
  scenario.options.resize(n_options);

  sim::Trace trace;
  engine::FpgaEngineConfig cfg;
  cfg.trace = &trace;
  engine::InterOptionEngine engine(scenario.interest, scenario.hazard, cfg);
  const auto run = engine.price(scenario.options);

  std::cout << "== Fig. 2 reproduction: concurrent dataflow stages ==\n"
            << n_options << " options streamed through a free-running "
            << "region, "
            << with_thousands(double(run.kernel_cycles), 0)
            << " kernel cycles\n\n"
            << trace.render_ascii(100) << '\n';

  std::cout << "mean concurrency (stages simultaneously busy): "
            << fixed(trace.mean_concurrency(), 2) << "\n\n";

  std::cout << "stage utilisation over the run:\n";
  for (std::size_t t = 0; t < trace.track_count(); ++t) {
    std::cout << "  " << pad_right(trace.track_name(t), 18)
              << fixed(trace.utilisation(t) * 100.0, 1) << "%\n";
  }

  std::cout << "\nthe interpolation scan is the busiest stage "
               "(the bottleneck the vectorised engine of Fig. 3 attacks): "
            << with_thousands(double(engine.last_run().interp_busy), 0)
            << " busy cycles vs hazard "
            << with_thousands(double(engine.last_run().hazard_busy), 0)
            << '\n';

  // Waveform dump: the same trace as a VCD file for GTKWave inspection.
  sim::VcdOptions vcd;
  vcd.comment = "cdsflow free-running CDS engine, " +
                std::to_string(n_options) + " options, 300 MHz kernel";
  const std::string vcd_path = "fig2_dataflow.vcd";
  sim::write_vcd_file(vcd_path, trace, vcd);
  std::cout << "waveform written to ./" << vcd_path
            << " (open with GTKWave)\n";
  return 0;
}
