/// \file test_cds_schedule.cpp
/// Unit tests for payment schedule generation: counts, stub periods,
/// edge maturities, validation.

#include <gtest/gtest.h>

#include "cds/schedule.hpp"
#include "common/error.hpp"

namespace cdsflow::cds {
namespace {

CdsOption option(double maturity, double freq) {
  return {.id = 0,
          .maturity_years = maturity,
          .payment_frequency = freq,
          .recovery_rate = 0.4};
}

TEST(Schedule, QuarterlyFiveYears) {
  const auto s = make_schedule(option(5.0, 4.0));
  ASSERT_EQ(s.size(), 20u);
  EXPECT_DOUBLE_EQ(s.front().t, 0.25);
  EXPECT_DOUBLE_EQ(s.front().dt, 0.25);
  EXPECT_DOUBLE_EQ(s.back().t, 5.0);
  EXPECT_DOUBLE_EQ(s.back().dt, 0.25);
}

TEST(Schedule, SizeHelperMatchesMaterialisedSchedule) {
  for (const double m : {0.1, 0.25, 1.0, 3.7, 5.0, 9.99}) {
    for (const double f : {1.0, 2.0, 4.0, 12.0}) {
      EXPECT_EQ(schedule_size(option(m, f)), make_schedule(option(m, f)).size())
          << "m=" << m << " f=" << f;
    }
  }
}

TEST(Schedule, ShortFinalStub) {
  // 1.1 years quarterly: 0.25, 0.5, 0.75, 1.0, then a 0.1y stub.
  const auto s = make_schedule(option(1.1, 4.0));
  ASSERT_EQ(s.size(), 5u);
  EXPECT_DOUBLE_EQ(s.back().t, 1.1);
  EXPECT_NEAR(s.back().dt, 0.1, 1e-12);
}

TEST(Schedule, MaturityExactlyOnPaymentDateNoEmptyStub) {
  const auto s = make_schedule(option(2.0, 4.0));
  EXPECT_EQ(s.size(), 8u);
  EXPECT_DOUBLE_EQ(s.back().t, 2.0);
}

TEST(Schedule, SubPeriodMaturityGivesSinglePoint) {
  // 0.1 years with annual payments: one point at maturity.
  const auto s = make_schedule(option(0.1, 1.0));
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.front().t, 0.1);
  EXPECT_DOUBLE_EQ(s.front().dt, 0.1);
}

TEST(Schedule, PointsAreStrictlyIncreasingAndContiguous) {
  const auto s = make_schedule(option(7.3, 12.0));
  double prev = 0.0;
  double total = 0.0;
  for (const auto& tp : s) {
    EXPECT_GT(tp.t, prev);
    EXPECT_NEAR(tp.dt, tp.t - prev, 1e-12);
    prev = tp.t;
    total += tp.dt;
  }
  EXPECT_NEAR(total, 7.3, 1e-9);  // periods tile [0, maturity]
}

TEST(Schedule, MonthlyCountsScaleWithFrequency) {
  EXPECT_EQ(schedule_size(option(1.0, 12.0)), 12u);
  EXPECT_EQ(schedule_size(option(1.0, 2.0)), 2u);
  EXPECT_EQ(schedule_size(option(1.0, 1.0)), 1u);
}

TEST(Schedule, FloatingPointMaturityNearPaymentDate) {
  // 4.999999999 * 4 = 19.999..., must not create a 20th + empty 21st point.
  const auto s = make_schedule(option(5.0 - 1e-11, 4.0));
  EXPECT_EQ(s.size(), 20u);
}

TEST(Schedule, RejectsInvalidOptions) {
  EXPECT_THROW(make_schedule(option(0.0, 4.0)), Error);
  EXPECT_THROW(make_schedule(option(-1.0, 4.0)), Error);
  EXPECT_THROW(make_schedule(option(5.0, 0.0)), Error);
  CdsOption bad = option(5.0, 4.0);
  bad.recovery_rate = 1.0;
  EXPECT_THROW(make_schedule(bad), Error);
}

TEST(Schedule, NonIntegerFrequency) {
  // 2.5 payments/year over 2 years: periods of 0.4y -> points at
  // 0.4, 0.8, 1.2, 1.6, 2.0.
  const auto s = make_schedule(option(2.0, 2.5));
  ASSERT_EQ(s.size(), 5u);
  EXPECT_NEAR(s[0].t, 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(s.back().t, 2.0);
}

}  // namespace
}  // namespace cdsflow::cds
