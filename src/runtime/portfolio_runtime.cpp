#include "runtime/portfolio_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "engines/registry.hpp"
#include "runtime/replica_pool.hpp"
#include "runtime/shard.hpp"
#include "runtime/thread_pool.hpp"

namespace cdsflow::runtime {

namespace {

/// Deterministic list schedule: shards in submission order, each onto the
/// earliest-free lane (list_schedule_makespan, shared with the streaming
/// runtime). Returns the makespan and writes lane assignments.
double schedule_lanes(std::vector<ShardOutcome>& shards, unsigned lanes) {
  std::vector<double> task_seconds;
  task_seconds.reserve(shards.size());
  for (const auto& shard : shards) task_seconds.push_back(shard.engine_seconds);
  std::vector<unsigned> lane_of;
  const double makespan = list_schedule_makespan(task_seconds, lanes, &lane_of);
  for (std::size_t i = 0; i < shards.size(); ++i) shards[i].lane = lane_of[i];
  return makespan;
}

}  // namespace

PortfolioRuntime::PortfolioRuntime(cds::TermStructure interest,
                                   cds::TermStructure hazard,
                                   RuntimeConfig config)
    : config_(std::move(config)) {
  unsigned workers = config_.workers;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  lanes_ = config_.engine_replicas == 0
               ? workers
               : std::min(workers, config_.engine_replicas);
  CDSFLOW_EXPECT(lanes_ > 0, "runtime needs at least one lane");
  engines_.reserve(lanes_);
  for (unsigned i = 0; i < lanes_; ++i) {
    engines_.push_back(engine::make_engine(config_.engine, interest, hazard,
                                           config_.fpga, config_.cpu));
  }
}

PortfolioRuntime::~PortfolioRuntime() = default;

std::string PortfolioRuntime::worker_description() const {
  return engines_.front()->description();
}

RuntimeRun PortfolioRuntime::price(const std::vector<cds::CdsOption>& options) {
  RuntimeRun out;
  out.lanes = lanes_;
  out.shard_size = config_.shard_size != 0
                       ? config_.shard_size
                       : auto_shard_size(options.size(), lanes_);
  if (options.empty()) return out;

  const auto plan = plan_shards(options.size(), out.shard_size);
  std::vector<engine::PricingRun> shard_runs(plan.size());

  const auto t0 = std::chrono::steady_clock::now();
  if (lanes_ == 1) {
    for (const auto& shard : plan) {
      const std::vector<cds::CdsOption> slice(options.begin() + shard.begin,
                                              options.begin() + shard.end);
      shard_runs[shard.index] = engines_.front()->price(slice);
    }
  } else {
    ReplicaPool engine_pool(engines_.size());
    ThreadPool pool(lanes_);
    std::vector<std::future<void>> pending;
    pending.reserve(plan.size());
    for (const auto& shard : plan) {
      pending.push_back(pool.submit([this, &engine_pool, &options, &shard,
                                     &shard_runs] {
        const ReplicaPool::Lease engine(engine_pool);
        const std::vector<cds::CdsOption> slice(
            options.begin() + shard.begin, options.begin() + shard.end);
        shard_runs[shard.index] = engines_[engine.index()]->price(slice);
      }));
    }
    for (auto& f : pending) f.get();  // rethrows the first shard failure
  }
  const auto t1 = std::chrono::steady_clock::now();

  // Deterministic merge in shard (= submission) order. Risk-mode engines
  // carry sensitivities and ladder rows next to the spreads; concatenating
  // all three in the same order keeps the merged run bit-identical to a
  // single-engine run.
  out.run.results.reserve(options.size());
  out.shards.reserve(plan.size());
  for (const auto& shard : plan) {
    const auto& run = shard_runs[shard.index];
    CDSFLOW_ASSERT(run.results.size() == shard.size(),
                   "shard result count mismatch");
    out.run.results.insert(out.run.results.end(), run.results.begin(),
                           run.results.end());
    if (!run.sensitivities.empty()) {
      CDSFLOW_ASSERT(run.sensitivities.size() == shard.size(),
                     "shard sensitivity count mismatch");
      out.run.sensitivities.insert(out.run.sensitivities.end(),
                                   run.sensitivities.begin(),
                                   run.sensitivities.end());
      CDSFLOW_ASSERT(run.cs01_ladder.size() ==
                         shard.size() * run.ladder_buckets,
                     "shard ladder size mismatch");
      out.run.ladder_buckets = run.ladder_buckets;
      out.run.cs01_ladder.insert(out.run.cs01_ladder.end(),
                                 run.cs01_ladder.begin(),
                                 run.cs01_ladder.end());
    }
    out.run.kernel_cycles += run.kernel_cycles;
    out.run.kernel_seconds += run.kernel_seconds;
    out.run.transfer_seconds += run.transfer_seconds;
    out.run.invocations += run.invocations;
    out.shards.push_back({shard.index, shard.begin, shard.end,
                          run.total_seconds, run.kernel_cycles,
                          run.invocations, /*lane=*/0});
  }

  out.run.total_seconds = schedule_lanes(out.shards, lanes_);
  CDSFLOW_ASSERT(out.run.total_seconds > 0.0,
                 "merged run must take non-zero time");
  out.run.options_per_second =
      static_cast<double>(options.size()) / out.run.total_seconds;

  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  if (out.wall_seconds > 0.0) {
    out.wall_options_per_second =
        static_cast<double>(options.size()) / out.wall_seconds;
  }
  return out;
}

}  // namespace cdsflow::runtime
