/// \file shard.hpp
/// Portfolio sharding: cut a batch of options into contiguous, fixed-size
/// chunks for concurrent pricing.
///
/// "There are no dependencies between calculations involving different
/// options" (paper Sec. IV) -- so the decomposition is a plain contiguous
/// partition in submission order. Contiguity is what makes the merge
/// deterministic: concatenating per-shard results in shard order restores
/// the submission order exactly, whichever worker priced which shard.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cdsflow::runtime {

/// One contiguous slice [begin, end) of the submitted portfolio.
struct Shard {
  std::size_t index = 0;  ///< Position in the plan (merge key).
  std::size_t begin = 0;  ///< First option (inclusive).
  std::size_t end = 0;    ///< One past the last option.

  std::size_t size() const { return end - begin; }
};

/// Cuts `n_options` into shards of `shard_size` (the final shard carries the
/// remainder). `shard_size` must be > 0. Returns an empty plan for an empty
/// portfolio.
std::vector<Shard> plan_shards(std::size_t n_options, std::size_t shard_size);

/// Default shard size for a portfolio priced by `workers` concurrent engine
/// lanes: enough shards per lane that list scheduling balances the load
/// (about 4x oversubscription), never smaller than one option.
std::size_t auto_shard_size(std::size_t n_options, unsigned workers);

/// Shard size for an engine that pays a fixed `setup_seconds` per shard
/// (e.g. the batch kernel's grid dedup + tabulation): grows shards beyond
/// auto_shard_size() until the per-shard setup is at most
/// `max_setup_fraction` of the shard's per-option compute, capped at one
/// shard per lane so every lane still gets work. With no setup cost this is
/// exactly auto_shard_size(). `workers`, `per_option_seconds` and
/// `max_setup_fraction` must be positive.
std::size_t setup_aware_shard_size(std::size_t n_options, unsigned workers,
                                   double setup_seconds,
                                   double per_option_seconds,
                                   double max_setup_fraction = 0.1);

/// Deterministic list schedule of `task_seconds` (tasks in submission order)
/// onto `lanes` identical lanes: each task is placed on the earliest-free
/// lane. Returns the makespan; when `lane_of` is non-null it is resized and
/// receives the per-task lane assignment. The single home of the modelled
/// concurrent-throughput figure both runtimes report (shards for the batch
/// runtime, micro-batches for the streaming runtime). `lanes` must be > 0.
double list_schedule_makespan(std::span<const double> task_seconds,
                              unsigned lanes,
                              std::vector<unsigned>* lane_of = nullptr);

}  // namespace cdsflow::runtime
