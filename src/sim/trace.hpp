/// \file trace.hpp
/// Activity tracing: which process was busy during which cycle interval.
///
/// Traces power the figure-reproduction benches: the baseline engine's trace
/// shows stages running strictly one after another (paper Fig. 1), while the
/// dataflow engines' traces show them overlapped (Fig. 2). Utilities compute
/// per-stage utilisation, pairwise overlap, and render an ASCII timeline.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cycle.hpp"

namespace cdsflow::sim {

/// Half-open busy interval [begin, end) attributed to a track.
struct TraceInterval {
  std::size_t track = 0;
  Cycle begin = 0;
  Cycle end = 0;
};

class Trace {
 public:
  /// Registers a named track (one per stage); returns its id.
  std::size_t add_track(std::string name);

  /// Records that `track` was busy over [begin, end). Intervals may be
  /// recorded out of order but must not be empty.
  void record(std::size_t track, Cycle begin, Cycle end);

  std::size_t track_count() const { return track_names_.size(); }
  const std::string& track_name(std::size_t t) const {
    return track_names_.at(t);
  }
  const std::vector<TraceInterval>& intervals() const { return intervals_; }

  /// Total busy cycles on a track (intervals on one track never overlap).
  Cycle busy_cycles(std::size_t track) const;

  /// Last cycle covered by any interval (0 for an empty trace).
  Cycle span() const;

  /// busy(track) / span() in [0,1].
  double utilisation(std::size_t track) const;

  /// Cycles during which *both* tracks were busy, as a fraction of the
  /// smaller track's busy time. ~0 for the sequential engine, high for the
  /// dataflow engines.
  double overlap_fraction(std::size_t a, std::size_t b) const;

  /// Mean number of tracks simultaneously busy over the trace span -- a
  /// single-number "dataflow-ness" metric (1.0 == fully sequential).
  double mean_concurrency() const;

  /// ASCII timeline: one row per track, `width` buckets over the span.
  /// Bucket glyphs: ' ' idle, '.' <25% busy, '-' <50%, '+' <75%, '#' >=75%.
  std::string render_ascii(std::size_t width = 100) const;

 private:
  std::vector<std::string> track_names_;
  std::vector<TraceInterval> intervals_;
};

}  // namespace cdsflow::sim
