/// \file test_sim_channel.cpp
/// Unit tests for sim::Channel: FIFO semantics, capacity/back-pressure,
/// statistics counters.

#include <gtest/gtest.h>

#include <string>

#include "sim/channel.hpp"

namespace cdsflow::sim {
namespace {

TEST(Channel, StartsEmpty) {
  Channel<int> c("c", 4);
  EXPECT_TRUE(c.empty());
  EXPECT_FALSE(c.full());
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.capacity(), 4u);
  EXPECT_TRUE(c.can_push());
  EXPECT_FALSE(c.can_pop());
}

TEST(Channel, FifoOrder) {
  Channel<int> c("c", 8);
  for (int i = 0; i < 5; ++i) c.push(i);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(c.pop(), i);
}

TEST(Channel, FrontPeeksWithoutConsuming) {
  Channel<std::string> c("c", 2);
  c.push("a");
  EXPECT_EQ(c.front(), "a");
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.pop(), "a");
}

TEST(Channel, CapacityEnforced) {
  Channel<int> c("c", 2);
  c.push(1);
  c.push(2);
  EXPECT_TRUE(c.full());
  EXPECT_FALSE(c.can_push());
  EXPECT_THROW(c.push(3), Error);
}

TEST(Channel, PopOnEmptyThrows) {
  Channel<int> c("c", 2);
  EXPECT_THROW(c.pop(), Error);
  EXPECT_THROW(c.front(), Error);
}

TEST(Channel, ZeroCapacityRejected) {
  EXPECT_THROW(Channel<int>("c", 0), Error);
}

TEST(Channel, StatsTrackTrafficAndHighWater) {
  Channel<int> c("c", 4);
  c.push(1);
  c.push(2);
  c.push(3);
  c.pop();
  c.push(4);
  EXPECT_EQ(c.total_pushed(), 4u);
  EXPECT_EQ(c.max_occupancy(), 3u);
}

TEST(Channel, StallCountersAreManual) {
  Channel<int> c("c", 1);
  EXPECT_EQ(c.push_stalls(), 0u);
  c.record_push_stall();
  c.record_push_stall();
  c.record_pop_stall();
  EXPECT_EQ(c.push_stalls(), 2u);
  EXPECT_EQ(c.pop_stalls(), 1u);
}

TEST(Channel, MoveOnlyFriendly) {
  Channel<std::unique_ptr<int>> c("c", 2);
  c.push(std::make_unique<int>(42));
  auto p = c.pop();
  EXPECT_EQ(*p, 42);
}

TEST(Channel, DepthOneBehavesLikeRegister) {
  Channel<int> c("c", 1);
  c.push(7);
  EXPECT_TRUE(c.full());
  EXPECT_EQ(c.pop(), 7);
  EXPECT_TRUE(c.empty());
  c.push(8);
  EXPECT_EQ(c.pop(), 8);
}

}  // namespace
}  // namespace cdsflow::sim
