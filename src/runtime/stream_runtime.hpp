/// \file stream_runtime.hpp
/// Streaming quote-ingest runtime: live feed -> bounded queue -> micro-
/// batches -> concurrent pricer lanes -> deterministic event-order merge,
/// with per-event deadline accounting.
///
/// This is the paper's AAT-style real-time future-work scenario built on the
/// pieces the batch runtime already proved out: the same ThreadPool drives
/// the lanes, the same ReplicaPool hands each in-flight micro-batch an
/// exclusive pricer replica, and the same list-schedule gives the modelled
/// (paper-style) throughput figure next to the measured wall figure.
///
/// Dataflow:
///
///   producers --push--> IngestQueue (bounded; block / drop-oldest, counted)
///                           |
///                      dispatcher thread: MicroBatcher
///                      (flush on max_batch or max_wait)
///                           |              .
///                   option micro-batch     hazard-quote event
///                           |                   |
///                  ThreadPool lane           barrier (drain in-flight),
///                  (StreamPricer replica)    then update *every* replica
///                           |                incrementally
///                  BatchCollector.put(index, results)
///                           |
///                  finish(): concatenate batches in index order
///                  == event ingest order, whatever order lanes finished in
///
/// Determinism guarantee: micro-batches are formed and indexed in ingest
/// (sequence) order, every lane replica holds identical curve/grid state
/// between barriers (hazard updates are applied to all replicas at a
/// barrier, in event order), and the merge concatenates batches by index.
/// The merged spreads for a given accepted-event sequence are therefore
/// bit-identical to replaying the same events through one StreamPricer
/// serially, regardless of lane count, batch boundaries or completion
/// order. (Under kDropOldest the *accepted* sequence itself depends on
/// producer/dispatcher timing; the guarantee is order- and
/// value-determinism for whatever survived, which is what a lossy feed can
/// promise.)
///
/// Deadline accounting definitions (all anchored at the queue's ingest
/// stamp):
///   * ingest-to-result latency -- per option event: completion time of its
///     micro-batch minus its ingest stamp. Reported as p50 / p99 / max.
///   * deadline miss            -- an option event whose ingest-to-result
///     latency exceeded `deadline_us` (0 disables).
///   * queue-depth high water   -- max ingest-queue depth observed.
/// The modelled/wall throughput split follows the batch runtime: modelled =
/// events / list-schedule makespan of the per-batch pricing times over the
/// lanes; wall = events / (last batch completion - first event ingest).

#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cds/curve.hpp"
#include "cds/stream_pricer.hpp"
#include "common/thread_annotations.hpp"
#include "engines/engine.hpp"
#include "runtime/ingest_queue.hpp"
#include "runtime/replica_pool.hpp"
#include "runtime/thread_pool.hpp"
#include "workload/feed.hpp"

namespace cdsflow::runtime {

struct StreamConfig {
  /// CPU-family engine name, "cpu[-batch][-risk][-mt[N]]" (the stream lanes
  /// always run the batched grid kernel -- values are identical across the
  /// CPU kernels -- so the name's significant parts are "-risk", which
  /// switches the micro-batches to Greeks, and "-mt[N]", which sets the
  /// lane count when `lanes` is 0).
  std::string engine = "cpu-batch";
  /// Pricer lanes (= replicas). 0: take the engine name's -mtN, else
  /// hardware_concurrency.
  unsigned lanes = 0;
  std::size_t queue_capacity = 8192;
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  /// Micro-batch flush bounds: flush when `max_batch` events are pending or
  /// the oldest pending event has waited `max_wait_us` since ingest.
  std::size_t max_batch = 1024;
  std::uint64_t max_wait_us = 500;
  /// Ingest-to-result deadline for the miss counter; 0 disables.
  std::uint64_t deadline_us = 0;
  /// Risk-mode parameters (engine name carrying "-risk").
  double risk_bump = 1e-4;
  std::vector<double> ladder_edges;
};

/// Per micro-batch accounting, in batch (= event) order.
struct StreamBatchOutcome {
  std::size_t index = 0;
  std::size_t events = 0;  ///< option events priced in this batch
  unsigned lane = 0;       ///< replica that actually priced it
  double pricing_seconds = 0.0;
  double max_latency_seconds = 0.0;
  std::uint64_t deadline_misses = 0;
};

struct StreamReport {
  /// Merged run: results (and, in risk mode, sensitivities / cs01_ladder)
  /// in event-ingest order; kernel_seconds sums the per-batch pricing
  /// times, total_seconds is the modelled lane makespan, invocations the
  /// batch count.
  engine::PricingRun run;
  std::vector<StreamBatchOutcome> batches;

  unsigned lanes = 1;
  /// Feed accounting.
  std::uint64_t events_in = 0;      ///< accepted into the queue
  std::uint64_t events_priced = 0;  ///< option events that produced results
  std::uint64_t hazard_updates = 0;
  std::uint64_t events_dropped = 0;  ///< evicted by kDropOldest
  std::uint64_t blocked_pushes = 0;  ///< kBlock pushes that had to wait
  std::size_t queue_high_water = 0;
  /// Incremental-risk accounting (sums over all lanes' pricers).
  std::uint64_t grids_retabulated = 0;
  std::uint64_t full_rebuild_grids = 0;  ///< what per-update rebuilds cost
  /// Deadline accounting (see file header for definitions).
  double p50_latency_seconds = 0.0;
  double p99_latency_seconds = 0.0;
  double max_latency_seconds = 0.0;
  std::uint64_t deadline_misses = 0;
  /// Modelled vs wall throughput split (see file header).
  double modelled_seconds = 0.0;
  double modelled_events_per_second = 0.0;
  double wall_seconds = 0.0;
  double wall_events_per_second = 0.0;
  double batches_per_second = 0.0;
};

namespace stream_detail {

/// One priced micro-batch as a lane hands it back.
struct BatchResult {
  std::size_t index = 0;
  unsigned lane = 0;
  double pricing_seconds = 0.0;
  StreamClock::time_point done{};
  std::vector<cds::SpreadResult> results;
  std::vector<cds::Sensitivities> sensitivities;
  std::vector<double> cs01_ladder;
  /// Per option event, batch order: done - ingest.
  std::vector<double> latency_seconds;
};

/// Thread-safe store of priced micro-batches, merged back in batch-index
/// order regardless of completion order -- the streaming counterpart of the
/// batch runtime's shard merge.
class BatchCollector {
 public:
  /// Any lane, any order. Indices must be unique.
  void put(BatchResult result) CDSFLOW_EXCLUDES(mutex_);
  /// Hands back all batches sorted by index; asserts they are the
  /// contiguous range 0..n-1 (no batch lost, none duplicated).
  std::vector<BatchResult> take() CDSFLOW_EXCLUDES(mutex_);
  /// Copies the contiguous completed prefix starting at batch index `begin`
  /// (stops at the first gap) without removing anything -- the incremental
  /// counterpart of take() for callers that need results while the stream
  /// is still live. take()'s contiguity assertion is unaffected.
  std::vector<BatchResult> peek_ready(std::size_t begin) const
      CDSFLOW_EXCLUDES(mutex_);
  std::size_t count() const CDSFLOW_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::vector<BatchResult> results_ CDSFLOW_GUARDED_BY(mutex_);
};

}  // namespace stream_detail

class StreamRuntime {
 public:
  /// Builds the lane replicas up front (each copies the curves, as the
  /// batch runtime's engine replicas do) and starts the dispatcher. Throws
  /// cdsflow::Error for non-CPU engine names or invalid parameters.
  StreamRuntime(cds::TermStructure interest, cds::TermStructure hazard,
                StreamConfig config = {});
  ~StreamRuntime();

  StreamRuntime(const StreamRuntime&) = delete;
  StreamRuntime& operator=(const StreamRuntime&) = delete;

  /// Producer API (thread-safe, many producers). Returns false once the
  /// stream is closed.
  bool push(const cds::CdsOption& option);
  bool push_hazard_quote(std::size_t knot, double rate);

  /// Closes ingest: queued events still drain, further pushes fail.
  void close();

  /// Closes ingest, drains everything, joins the dispatcher and returns the
  /// merged report. Call at most once; rethrows the first lane/dispatcher
  /// exception, if any.
  StreamReport finish();

  /// Convenience: plays a pre-materialised feed -- pacing producers by the
  /// events' arrival offsets (sleep-until; offsets of 0 push back-to-back)
  /// -- then finish()es.
  StreamReport play(const std::vector<workload::QuoteFeedEvent>& feed);

  /// Session hook for live consumers (the pricing service): hands back the
  /// micro-batches completed since the previous poll_batches() call, in
  /// batch-index (= event ingest) order, while the stream stays open.
  /// Copies -- finish() still returns the full merged report afterwards.
  /// Because batches are returned only once their whole contiguous prefix
  /// is complete, concatenating the polled results reproduces the merged
  /// event-order result stream incrementally (same determinism guarantee as
  /// finish(), see file header). Call from one consumer thread.
  std::vector<stream_detail::BatchResult> poll_batches();

  unsigned lanes() const { return lanes_; }
  bool risk_mode() const { return pricer_config_.risk_mode; }
  std::size_t ladder_buckets() const;
  const StreamConfig& config() const { return config_; }
  /// Description of one lane replica, for reports.
  std::string worker_description() const;

 private:
  void dispatch_loop();
  /// Submits one option micro-batch to the pool (dispatcher thread only).
  void submit_batch(std::vector<QuoteEvent> events);
  /// Waits for every in-flight micro-batch (dispatcher thread only).
  void barrier();

  StreamConfig config_;
  cds::StreamPricerConfig pricer_config_;
  unsigned lanes_ = 1;

  std::vector<std::unique_ptr<cds::StreamPricer>> pricers_;
  IngestQueue queue_;
  std::unique_ptr<ReplicaPool> replicas_;
  std::unique_ptr<ThreadPool> pool_;
  stream_detail::BatchCollector collector_;

  /// Dispatcher-confined state: written only by dispatch_loop() on
  /// dispatcher_, read by finish() strictly after dispatcher_.join() (the
  /// join is the publication point -- a happens-before edge the analysis
  /// has no vocabulary for; see docs/CONCURRENCY.md). Not guarded by any
  /// capability on purpose: adding a mutex here would claim a concurrency
  /// that never happens.
  std::thread dispatcher_;
  std::vector<std::future<void>> in_flight_;
  std::size_t next_batch_index_ = 0;
  std::uint64_t hazard_updates_ = 0;
  std::exception_ptr failure_;
  bool first_ingest_set_ = false;
  StreamClock::time_point first_ingest_{};

  /// First batch index the next poll_batches() call will hand back
  /// (consumer-thread state, see poll_batches()).
  std::size_t next_polled_batch_ = 0;

  bool finished_ = false;
};

}  // namespace cdsflow::runtime
