/// \file ingest_queue.hpp
/// Bounded multi-producer/single-consumer ingest queue plus the micro-batch
/// accumulator for the streaming quote runtime.
///
/// The paper's stated future direction is driving the engine from a live
/// AAT-style real-time feed rather than a pre-materialised book. The feed
/// side of that runtime is here:
///
///   * QuoteEvent      -- one timestamped feed element: a CDS option quote
///                        request, or a hazard-quote update (knot k of the
///                        hazard curve moved to a new rate).
///   * IngestQueue     -- a bounded MPSC queue with a configurable
///                        backpressure policy. kBlock parks producers until
///                        the dispatcher frees space (lossless, adds
///                        latency); kDropOldest evicts the stalest queued
///                        event to admit the new one (bounded latency, loses
///                        events). Both behaviours are *counted*
///                        (blocked_pushes / dropped_oldest) so the report
///                        can say which price was paid.
///   * MicroBatcher    -- the dispatcher's flush policy: close the open
///                        micro-batch when it reaches `max_batch` events or
///                        when its oldest event has waited `max_wait` since
///                        ingest. A pure state machine over the events'
///                        ingest timestamps -- no clock of its own -- so
///                        tests drive it with a fake clock.
///
/// Timestamps use steady_clock and are stamped once, on entry to push() --
/// *before* any backpressure wait, so time a producer spends parked by the
/// kBlock policy is charged to the event's latency (the sequence number is
/// still assigned under the queue lock at enqueue, so sequences match queue
/// order while ingest stamps of racing producers may interleave).
/// Ingest-to-result latency and deadline accounting in the runtime all
/// measure from that stamp.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "cds/types.hpp"
#include "common/thread_annotations.hpp"

namespace cdsflow::runtime {

using StreamClock = std::chrono::steady_clock;

/// What to do with a push into a full queue.
enum class BackpressurePolicy {
  kBlock,      ///< park the producer until the dispatcher frees space
  kDropOldest  ///< evict the stalest queued event, admit the new one
};

const char* to_string(BackpressurePolicy policy);
/// Parses "block" / "drop-oldest" (the CLI flag values); throws on others.
BackpressurePolicy parse_backpressure_policy(const std::string& name);

/// One feed element.
struct QuoteEvent {
  enum class Kind : std::uint8_t {
    kOption,      ///< price this CDS option
    kHazardQuote  ///< hazard curve knot `knot` moved to `rate`
  };
  Kind kind = Kind::kOption;
  /// Global arrival order, assigned by the queue at ingest.
  std::uint64_t sequence = 0;
  /// Ingest timestamp, stamped on entry to IngestQueue::push -- before any
  /// backpressure wait (latency measurements anchor here).
  StreamClock::time_point ingest{};
  /// kOption payload.
  cds::CdsOption option{};
  /// kHazardQuote payload.
  std::size_t knot = 0;
  double rate = 0.0;
};

QuoteEvent option_event(cds::CdsOption option);
QuoteEvent hazard_quote_event(std::size_t knot, double rate);

/// Queue-side accounting (snapshot via IngestQueue::stats()).
struct IngestQueueStats {
  /// Events accepted into the queue (including any later evicted by
  /// kDropOldest).
  std::uint64_t accepted = 0;
  /// Events evicted by the kDropOldest policy (never reach the dispatcher).
  std::uint64_t dropped_oldest = 0;
  /// Pushes rejected because the queue was already closed.
  std::uint64_t rejected_closed = 0;
  /// Pushes that had to wait for space (kBlock policy).
  std::uint64_t blocked_pushes = 0;
  /// Maximum queue depth observed.
  std::size_t high_water = 0;
};

class IngestQueue {
 public:
  /// `capacity` must be > 0.
  IngestQueue(std::size_t capacity, BackpressurePolicy policy);

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Multi-producer push. Stamps the ingest time on entry (so a blocked
  /// kBlock push charges its wait to the event's latency), assigns the
  /// sequence number at enqueue, and enqueues. Returns false only when the
  /// queue is closed (the event is discarded); under kDropOldest a push
  /// into a full queue evicts the oldest event and still returns true.
  bool push(QuoteEvent event) CDSFLOW_EXCLUDES(mutex_);

  /// No more pushes will be accepted; parked producers and the consumer are
  /// released. Events already queued remain poppable (close-then-drain).
  void close() CDSFLOW_EXCLUDES(mutex_);

  /// Single-consumer pop: waits until an event is available or the queue is
  /// drained (closed and empty, -> nullopt).
  std::optional<QuoteEvent> pop() CDSFLOW_EXCLUDES(mutex_);

  /// Like pop() but gives up after `timeout`; nullopt on timeout or drain
  /// (disambiguate with drained()).
  std::optional<QuoteEvent> pop_for(StreamClock::duration timeout)
      CDSFLOW_EXCLUDES(mutex_);

  bool closed() const CDSFLOW_EXCLUDES(mutex_);
  /// Closed and empty: no event will ever be popped again.
  bool drained() const CDSFLOW_EXCLUDES(mutex_);
  std::size_t size() const CDSFLOW_EXCLUDES(mutex_);
  std::size_t capacity() const { return capacity_; }
  BackpressurePolicy policy() const { return policy_; }
  IngestQueueStats stats() const CDSFLOW_EXCLUDES(mutex_);

 private:
  const std::size_t capacity_;
  const BackpressurePolicy policy_;

  /// One capability guards the whole queue state: events, the closed flag,
  /// the sequence counter and the stats block. stats() snapshots the whole
  /// IngestQueueStats under the lock -- a field-by-field off-lock read
  /// could pair an old accepted count with a new high-water mark.
  mutable Mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<QuoteEvent> queue_ CDSFLOW_GUARDED_BY(mutex_);
  bool closed_ CDSFLOW_GUARDED_BY(mutex_) = false;
  std::uint64_t next_sequence_ CDSFLOW_GUARDED_BY(mutex_) = 0;
  IngestQueueStats stats_ CDSFLOW_GUARDED_BY(mutex_);
};

/// The dispatcher's micro-batch flush policy. Accumulates popped events;
/// flush when the batch is full (add() returns true) or when the oldest
/// event has waited `max_wait` since its ingest stamp (due()). Pure state
/// machine over the events' own timestamps: the caller supplies "now", so
/// tests exercise the max-wait path with a fake clock.
class MicroBatcher {
 public:
  /// `max_batch` must be > 0; `max_wait` must be >= 0.
  MicroBatcher(std::size_t max_batch, StreamClock::duration max_wait);

  /// Adds an event to the open batch (opening one anchored at the event's
  /// ingest stamp if needed). Returns true when the batch just reached
  /// max_batch and must flush.
  bool add(QuoteEvent event);

  /// True while a (partial) batch is open.
  bool open() const { return !events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// True when the open batch's oldest event has waited >= max_wait at
  /// `now`. A closed (empty) batcher is never due.
  bool due(StreamClock::time_point now) const;

  /// Time until due(now + result) turns true: 0 when already due, max_wait
  /// when no batch is open (the longest a fresh event could wait).
  StreamClock::duration time_until_due(StreamClock::time_point now) const;

  /// Hands the open batch over and resets to empty.
  std::vector<QuoteEvent> take();

 private:
  const std::size_t max_batch_;
  const StreamClock::duration max_wait_;
  StreamClock::time_point opened_{};  ///< oldest event's ingest stamp
  std::vector<QuoteEvent> events_;
};

}  // namespace cdsflow::runtime
