#include "cds/hazard.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace cdsflow::cds {

double hazard_element_contribution(const TermStructure& hazard, std::size_t j,
                                   double t) {
  CDSFLOW_ASSERT(j < hazard.size(), "hazard element index out of range");
  const double seg_begin = j == 0 ? 0.0 : hazard.time(j - 1);
  const double lo = std::min(seg_begin, t);
  const double hi = std::min(hazard.time(j), t);
  return hazard.value(j) * std::max(0.0, hi - lo);
}

namespace {

/// Extrapolation beyond the final knot at the last rate.
double tail_contribution(const TermStructure& hazard, double t) {
  const double last = hazard.max_time();
  if (t <= last) return 0.0;
  return hazard.values().back() * (t - last);
}

}  // namespace

double integrated_hazard(const TermStructure& hazard, double t) {
  CDSFLOW_EXPECT(t >= 0.0, "integrated hazard requires t >= 0");
  // The HLS kernel's fixed-bound scan: every element contributes (possibly
  // zero); the accumulation is the carried dependency the paper analyses.
  double acc = 0.0;
  for (std::size_t j = 0; j < hazard.size(); ++j) {
    acc += hazard_element_contribution(hazard, j, t);
  }
  return acc + tail_contribution(hazard, t);
}

double integrated_hazard_listing1(const TermStructure& hazard, double t,
                                  unsigned lanes) {
  CDSFLOW_EXPECT(t >= 0.0, "integrated hazard requires t >= 0");
  CDSFLOW_EXPECT(lanes >= 1, "listing-1 integration requires >= 1 lane");
  std::vector<double> partial(lanes, 0.0);
  for (std::size_t j = 0; j < hazard.size(); ++j) {
    partial[j % lanes] += hazard_element_contribution(hazard, j, t);
  }
  double acc = 0.0;
  for (unsigned j = 0; j < lanes; ++j) acc += partial[j];
  return acc + tail_contribution(hazard, t);
}

double survival_probability(const TermStructure& hazard, double t) {
  return std::exp(-integrated_hazard(hazard, t));
}

double default_probability(const TermStructure& hazard, double t) {
  return 1.0 - survival_probability(hazard, t);
}

double accumulate_naive(std::span<const double> xs) {
  double acc = 0.0;
  for (const double x : xs) acc += x;
  return acc;
}

}  // namespace cdsflow::cds
