// Seeded violation for cdslint's codec-bounds rule: a decode case that
// reads a row count straight out of the payload -- no require_payload_*
// gate before the read and no require_count_between on the count -- so an
// attacker-controlled length would size a loop unchecked.
#include <cstdint>

namespace fixture {

std::uint32_t get_u32(const std::uint8_t* p);

enum class FrameType : std::uint8_t { kDemoRequest = 1 };

struct Frame {
  FrameType type = FrameType::kDemoRequest;
};

std::uint32_t decode(const Frame& frame, const std::uint8_t* p) {
  std::uint32_t total = 0;
  switch (frame.type) {
    case FrameType::kDemoRequest: {
      const std::uint32_t count = get_u32(p);  // the seeded violation
      for (std::uint32_t i = 0; i < count; ++i) {
        total += get_u32(p + 4 + 4 * i);
      }
      break;
    }
  }
  return total;
}

}  // namespace fixture
