#!/usr/bin/env python3
"""Docs link checker: every relative markdown link and every backticked
repo path in README.md and docs/*.md must resolve to a real file.

Two classes of reference are checked:
  * markdown links [text](target) whose target is not an http(s) URL or a
    pure #anchor -- resolved against the doc's directory, then the repo
    root (anchors on file targets are stripped; anchor existence is not
    checked);
  * backticked tokens that look like repo file paths (`src/net/codec.hpp`,
    `scripts/cluster_smoke.sh`, `docs/CLUSTER.md`) -- resolved the same
    way. Bare file names without a directory are skipped (too ambiguous).

Usage: scripts/check_docs_links.py [repo_root]
Exit: 0 when everything resolves, 1 otherwise (each failure is listed).
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BACKTICK_RE = re.compile(r"`([A-Za-z0-9_./-]+)`")
# Extensions a backticked token must carry to be treated as a file path.
PATH_SUFFIXES = (".md", ".hpp", ".cpp", ".h", ".c", ".py", ".sh", ".yml",
                 ".yaml", ".json", ".csv", ".txt", ".cmake")


def is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:", "#"))


def resolves(target: str, doc_dir: Path, root: Path) -> bool:
    path = target.split("#", 1)[0]
    if not path:
        return True  # pure anchor
    return (doc_dir / path).exists() or (root / path).exists()


def check_doc(doc: Path, root: Path) -> list:
    failures = []
    text = doc.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if is_external(target):
            continue
        if not resolves(target, doc.parent, root):
            line = text.count("\n", 0, match.start()) + 1
            failures.append(f"{doc.relative_to(root)}:{line}: "
                            f"broken link -> {target}")
    for match in BACKTICK_RE.finditer(text):
        token = match.group(1)
        if "/" not in token or not token.endswith(PATH_SUFFIXES):
            continue
        if not resolves(token, doc.parent, root):
            line = text.count("\n", 0, match.start()) + 1
            failures.append(f"{doc.relative_to(root)}:{line}: "
                            f"referenced path missing -> {token}")
    return failures


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    root = root.resolve()
    docs = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    failures = []
    checked = 0
    for doc in docs:
        if not doc.exists():
            failures.append(f"missing doc: {doc.relative_to(root)}")
            continue
        checked += 1
        failures.extend(check_doc(doc, root))
    for failure in failures:
        print(f"FAIL {failure}")
    print(f"checked {checked} doc(s): "
          f"{'OK' if not failures else f'{len(failures)} failure(s)'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
