/// \file test_runtime.cpp
/// The sharded portfolio runtime: shard planning, shard-boundary
/// correctness (bit-identical to a single-engine run, including empty and
/// one-option books), determinism across worker counts, and the modelled
/// multi-lane scaling.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <vector>

#include "common/error.hpp"
#include "engines/registry.hpp"
#include "runtime/portfolio_runtime.hpp"
#include "runtime/shard.hpp"
#include "runtime/thread_pool.hpp"
#include "workload/scenario.hpp"

namespace cdsflow {
namespace {

TEST(ShardPlan, ExactDivision) {
  const auto plan = runtime::plan_shards(12, 4);
  ASSERT_EQ(plan.size(), 3u);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].index, i);
    EXPECT_EQ(plan[i].begin, i * 4);
    EXPECT_EQ(plan[i].end, (i + 1) * 4);
    EXPECT_EQ(plan[i].size(), 4u);
  }
}

TEST(ShardPlan, RemainderGoesToLastShard) {
  const auto plan = runtime::plan_shards(10, 4);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[2].begin, 8u);
  EXPECT_EQ(plan[2].end, 10u);
  EXPECT_EQ(plan[2].size(), 2u);
}

TEST(ShardPlan, EmptyAndDegenerate) {
  EXPECT_TRUE(runtime::plan_shards(0, 4).empty());
  const auto one = runtime::plan_shards(1, 100);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].size(), 1u);
  EXPECT_THROW(runtime::plan_shards(5, 0), Error);
}

TEST(ShardPlan, AutoShardSizeOversubscribes) {
  // ~4 shards per worker, never zero.
  EXPECT_EQ(runtime::auto_shard_size(1600, 4), 100u);
  EXPECT_EQ(runtime::auto_shard_size(3, 8), 1u);
  EXPECT_EQ(runtime::auto_shard_size(0, 4), 1u);
  EXPECT_THROW(runtime::auto_shard_size(100, 0), Error);
}

TEST(ShardPlan, SetupAwareShardSizeAmortisesSetup) {
  // No setup cost: identical to the load-balanced default.
  EXPECT_EQ(runtime::setup_aware_shard_size(1600, 4, 0.0, 1e-3),
            runtime::auto_shard_size(1600, 4));
  // 0.5 s setup at 10 us/option and 10% tolerated overhead needs 500k
  // options per shard -- more than one lane's worth, so cap at n/workers.
  EXPECT_EQ(runtime::setup_aware_shard_size(100'000, 4, 0.5, 1e-5, 0.1),
            25'000u);
  // Mild setup grows the shard just enough: 1 ms setup at 1 ms/option and
  // 10% overhead -> 10 options per shard, above the balanced 7 (100/16).
  EXPECT_EQ(runtime::setup_aware_shard_size(100, 4, 1e-3, 1e-3, 0.1), 10u);
  // Already-amortised setup keeps the balanced size.
  EXPECT_EQ(runtime::setup_aware_shard_size(1600, 4, 1e-6, 1e-3, 0.1),
            runtime::auto_shard_size(1600, 4));
  EXPECT_THROW(runtime::setup_aware_shard_size(100, 0, 0.1, 1e-3), Error);
  EXPECT_THROW(runtime::setup_aware_shard_size(100, 4, 0.1, 0.0), Error);
  EXPECT_THROW(runtime::setup_aware_shard_size(100, 4, 0.1, 1e-3, 0.0),
               Error);
}

TEST(ThreadPool, RunsAllTasksAndPropagatesExceptions) {
  runtime::ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  auto failing = pool.submit([] { throw Error("boom"); });
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 20);
  EXPECT_THROW(failing.get(), Error);
}

TEST(ThreadPool, LateSubmitFailsFastAfterStop) {
  runtime::ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  pool.stop();
  // Everything accepted before stop ran to completion...
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 8);
  // ... and a submit racing (or trailing) the shutdown throws instead of
  // enqueueing a task no worker will ever run.
  EXPECT_THROW(pool.submit([&counter] { ++counter; }), Error);
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPool, StopIsIdempotent) {
  runtime::ThreadPool pool(2);
  pool.submit([] {}).get();
  pool.stop();
  pool.stop();  // second stop (and the destructor's) must be a no-op
  EXPECT_THROW(pool.submit([] {}), Error);
}

/// Bit-identical: sharded pricing must merge to exactly the bytes the
/// single-engine baseline produces, in submission order.
void expect_identical(const std::vector<cds::SpreadResult>& got,
                      const std::vector<cds::SpreadResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "at " << i;
    EXPECT_EQ(got[i].spread_bps, want[i].spread_bps) << "at " << i;
  }
}

TEST(PortfolioRuntime, MatchesSingleEngineAcrossShardBoundaries) {
  const auto scenario = workload::smoke_scenario(53, 11);
  for (const auto* name : {"cpu", "dataflow", "vectorised"}) {
    SCOPED_TRACE(name);
    auto single = engine::make_engine(name, scenario.interest,
                                      scenario.hazard);
    const auto baseline = single->price(scenario.options);

    runtime::RuntimeConfig cfg;
    cfg.engine = name;
    cfg.workers = 3;
    cfg.shard_size = 7;  // 53 = 7*7 + 4: exercises a ragged final shard
    runtime::PortfolioRuntime rt(scenario.interest, scenario.hazard, cfg);
    const auto run = rt.price(scenario.options);

    expect_identical(run.run.results, baseline.results);
    EXPECT_EQ(run.shards.size(), 8u);
    EXPECT_EQ(run.lanes, 3u);
    EXPECT_GT(run.run.options_per_second, 0.0);
    EXPECT_GT(run.wall_seconds, 0.0);
  }
}

TEST(PortfolioRuntime, EmptyPortfolio) {
  const auto scenario = workload::smoke_scenario(1, 5);
  runtime::RuntimeConfig cfg;
  cfg.workers = 4;
  runtime::PortfolioRuntime rt(scenario.interest, scenario.hazard, cfg);
  const auto run = rt.price({});
  EXPECT_TRUE(run.run.results.empty());
  EXPECT_TRUE(run.shards.empty());
  EXPECT_EQ(run.run.options_per_second, 0.0);
  EXPECT_EQ(run.run.total_seconds, 0.0);
}

TEST(PortfolioRuntime, SingleOptionPortfolio) {
  const auto scenario = workload::smoke_scenario(1, 5);
  auto single = engine::make_engine("vectorised", scenario.interest,
                                    scenario.hazard);
  const auto baseline = single->price(scenario.options);

  runtime::RuntimeConfig cfg;
  cfg.engine = "vectorised";
  cfg.workers = 4;
  runtime::PortfolioRuntime rt(scenario.interest, scenario.hazard, cfg);
  const auto run = rt.price(scenario.options);
  ASSERT_EQ(run.shards.size(), 1u);
  expect_identical(run.run.results, baseline.results);
}

TEST(PortfolioRuntime, DeterministicAcrossWorkerCounts) {
  const auto scenario = workload::smoke_scenario(41, 23);
  std::vector<cds::SpreadResult> reference;
  for (const unsigned workers : {1u, 2u, 5u}) {
    SCOPED_TRACE(workers);
    runtime::RuntimeConfig cfg;
    cfg.engine = "vectorised";
    cfg.workers = workers;
    cfg.shard_size = 6;  // hold the plan fixed while the lane count varies
    runtime::PortfolioRuntime rt(scenario.interest, scenario.hazard, cfg);
    const auto run = rt.price(scenario.options);
    if (reference.empty()) {
      reference = run.run.results;
    } else {
      expect_identical(run.run.results, reference);
    }
  }
}

TEST(PortfolioRuntime, ModelledMakespanScalesWithLanes) {
  // Simulated engine => deterministic per-shard times: one lane prices
  // shards back to back, four lanes overlap them.
  const auto scenario = workload::smoke_scenario(64, 3);
  auto run_with = [&](unsigned workers) {
    runtime::RuntimeConfig cfg;
    cfg.engine = "vectorised";
    cfg.workers = workers;
    cfg.shard_size = 4;
    runtime::PortfolioRuntime rt(scenario.interest, scenario.hazard, cfg);
    return rt.price(scenario.options);
  };
  const auto one = run_with(1);
  const auto four = run_with(4);
  expect_identical(four.run.results, one.run.results);
  EXPECT_GT(one.run.total_seconds, four.run.total_seconds * 1.5);
  // Total simulated work is lane-count independent.
  EXPECT_EQ(one.run.kernel_cycles, four.run.kernel_cycles);
}

TEST(PortfolioRuntime, EngineReplicasCapConcurrency) {
  const auto scenario = workload::smoke_scenario(8, 2);
  runtime::RuntimeConfig cfg;
  cfg.workers = 8;
  cfg.engine_replicas = 2;
  runtime::PortfolioRuntime rt(scenario.interest, scenario.hazard, cfg);
  EXPECT_EQ(rt.lanes(), 2u);
  const auto run = rt.price(scenario.options);
  for (const auto& shard : run.shards) EXPECT_LT(shard.lane, 2u);
}

TEST(PortfolioRuntime, RejectsUnknownEngine) {
  const auto scenario = workload::smoke_scenario(4, 2);
  runtime::RuntimeConfig cfg;
  cfg.engine = "warp-drive";
  EXPECT_THROW(
      runtime::PortfolioRuntime(scenario.interest, scenario.hazard, cfg),
      Error);
}

}  // namespace
}  // namespace cdsflow
