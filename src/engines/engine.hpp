/// \file engine.hpp
/// The engine abstraction: price a portfolio, report results and timing.
///
/// Six engines implement it, mirroring the paper's progression:
///
///   CpuEngine            the "bespoke C++ engine" (serial / OpenMP) --
///                        natively executed and wall-clock timed
///   XilinxBaselineEngine the Vitis open-source library structure:
///                        sequential pipelined loops, II=7 accumulation
///   DataflowEngine       "Optimised Dataflow CDS engine": concurrent
///                        stages + Listing 1, restart per option
///   InterOptionEngine    "Dataflow inter-options": free-running region
///   VectorisedEngine     "Vectorisation of dataflow engine": 6-lane
///                        round-robin hazard/interp pools
///   MultiEngine          N engines with the portfolio split in chunks
///                        (Table II scaling)
///
/// FPGA engines run on the cycle-level simulator; their timing is simulated
/// kernel cycles at the configured clock plus modelled PCIe/dispatch
/// overheads (the paper includes transfer in every figure). The CPU engine's
/// timing is real measured wall time. Both kinds report the paper's metric:
/// options per second.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <functional>

#include "cds/risk.hpp"
#include "cds/types.hpp"
#include "engines/tokens.hpp"
#include "fpga/hls_cost_model.hpp"
#include "fpga/interconnect.hpp"
#include "sim/cycle.hpp"
#include "sim/trace.hpp"

namespace cdsflow::engine {

/// Everything a pricing run produced.
struct PricingRun {
  /// Spreads in submission order (engines that partition or reorder work
  /// must restore the original order).
  std::vector<cds::SpreadResult> results;

  /// Per-option sensitivities in submission order; filled only by risk-mode
  /// engines (empty otherwise). When present, sensitivities[i].spread_bps
  /// equals results[i].spread_bps, so risk runs shard and merge exactly like
  /// pricing runs.
  std::vector<cds::Sensitivities> sensitivities;
  /// Bucketed CS01 ladder, row-major [option][bucket] in submission order;
  /// empty unless a risk-mode engine was configured with ladder edges.
  std::vector<double> cs01_ladder;
  /// Buckets per option in cs01_ladder (0 when no ladder was computed).
  std::size_t ladder_buckets = 0;

  /// Simulated kernel cycles (0 for native CPU runs). Includes region
  /// restart overheads for the per-option engines.
  sim::Cycle kernel_cycles = 0;
  /// Kernel time in seconds (cycles / clock for FPGA, measured for CPU).
  double kernel_seconds = 0.0;
  /// Modelled host<->card transfer + dispatch time (0 for CPU).
  double transfer_seconds = 0.0;
  /// kernel_seconds + transfer_seconds.
  double total_seconds = 0.0;
  /// The paper's headline metric.
  double options_per_second = 0.0;
  /// Kernel invocations (options for per-option engines, 1 for streaming).
  std::uint64_t invocations = 0;

  void finalise(std::size_t n_options);
};

/// Configuration shared by the simulated FPGA engines.
struct FpgaEngineConfig {
  fpga::HlsCostModel cost = fpga::default_cost_model();
  fpga::InterconnectConfig interconnect{};

  /// Replication factor of the hazard/interpolation pools in the vectorised
  /// engine (the paper uses 6).
  unsigned vector_lanes = 6;

  /// Depth of per-time-point streams (HLS default 2).
  std::size_t tp_stream_depth = 2;
  /// Depth of per-option streams. The option-info stream that bypasses the
  /// time-point pipeline must cover the options concurrently in flight.
  std::size_t option_stream_depth = 16;

  /// Account PCIe transfer + kernel dispatch (paper includes it everywhere).
  bool include_transfer = true;

  /// Optional activity trace (figure benches). Only meaningful for engines
  /// that run a single simulation (free-running / vectorised).
  sim::Trace* trace = nullptr;

  /// Optional per-option arrival pacing for streaming-quote scenarios:
  /// returns the cycles until the *next* option becomes available (default:
  /// back-to-back batch streaming). Used by the latency benches that model
  /// the AAT-style real-time feed of the paper's future work.
  std::function<sim::Cycle(const OptionToken&)> option_arrival_pace;

  double clock_hz() const { return cost.kernel_clock_hz; }
};

class Engine {
 public:
  virtual ~Engine() = default;

  /// Short identifier ("vectorised", "cpu", ...).
  virtual std::string name() const = 0;
  /// One-line description as used in the report tables.
  virtual std::string description() const = 0;
  /// Prices the portfolio. Thread-compatible: no shared mutable state
  /// between calls on distinct engine objects.
  virtual PricingRun price(const std::vector<cds::CdsOption>& options) = 0;
};

/// Bytes moved host->card / card->host for a batch (512-bit-packed layout):
/// used by every FPGA engine's transfer accounting.
struct BatchTraffic {
  std::uint64_t curve_bytes = 0;
  std::uint64_t option_bytes = 0;
  std::uint64_t result_bytes = 0;
  std::uint64_t total() const {
    return curve_bytes + option_bytes + result_bytes;
  }
};

BatchTraffic batch_traffic(std::size_t curve_points, std::size_t n_options);

}  // namespace cdsflow::engine
