#include "workload/scenario.hpp"

#include "workload/curves.hpp"
#include "workload/options.hpp"

namespace cdsflow::workload {

Scenario paper_scenario(std::size_t n_options, std::uint64_t seed) {
  Scenario s;
  s.name = "paper";
  s.description =
      "1024 interest + 1024 hazard rates over 30y; maturities U[1,10]y, "
      "quarterly premiums, recovery U[0.2,0.6] (calibration in DESIGN.md)";
  s.interest = paper_interest_curve();
  s.hazard = paper_hazard_curve();
  PortfolioSpec spec;
  spec.count = n_options;
  spec.seed = seed;
  s.options = make_portfolio(spec);
  return s;
}

Scenario smoke_scenario(std::size_t n_options, std::uint64_t seed) {
  Scenario s;
  s.name = "smoke";
  s.description = "64-point curves, small book; fast unit/integration tests";
  CurveSpec interest;
  interest.points = 64;
  interest.span_years = 12.0;
  interest.base_rate = 0.02;
  interest.shape = CurveShape::kUpwardSloping;
  interest.seed = 3;
  CurveSpec hazard = interest;
  hazard.base_rate = 0.04;
  hazard.shape = CurveShape::kHumped;
  hazard.seed = 5;
  s.interest = make_curve(interest);
  s.hazard = make_curve(hazard);
  PortfolioSpec spec;
  spec.count = n_options;
  spec.maturity_min_years = 0.5;
  spec.maturity_max_years = 8.0;
  spec.frequencies = {1.0, 2.0, 4.0, 12.0};
  spec.frequency_weights = {1.0, 1.0, 2.0, 1.0};
  spec.seed = seed;
  s.options = make_portfolio(spec);
  return s;
}

Scenario stressed_scenario(std::size_t n_options, std::uint64_t seed) {
  Scenario s;
  s.name = "stressed";
  s.description =
      "stressed credit regime: inverted elevated hazards, mixed coupon "
      "frequencies";
  CurveSpec interest;
  interest.points = 1024;
  interest.span_years = 30.0;
  interest.base_rate = 0.045;
  interest.shape = CurveShape::kStressed;
  interest.seed = 17;
  CurveSpec hazard = interest;
  hazard.base_rate = 0.09;
  hazard.shape = CurveShape::kStressed;
  hazard.seed = 19;
  s.interest = make_curve(interest);
  s.hazard = make_curve(hazard);
  PortfolioSpec spec;
  spec.count = n_options;
  spec.maturity_min_years = 0.25;
  spec.maturity_max_years = 7.0;
  spec.frequencies = {4.0, 12.0};
  spec.frequency_weights = {3.0, 1.0};
  spec.recovery_min = 0.1;
  spec.recovery_max = 0.4;
  spec.seed = seed;
  s.options = make_portfolio(spec);
  return s;
}

}  // namespace cdsflow::workload
