#include "hls/memory.hpp"

#include "common/error.hpp"

namespace cdsflow::hls {

MemoryPortModel::MemoryPortModel(MemoryPortConfig config) : config_(config) {
  CDSFLOW_EXPECT(config_.data_width_bits % 8 == 0,
                 "AXI width must be a whole number of bytes");
  CDSFLOW_EXPECT(config_.data_width_bits > 0, "AXI width must be positive");
  CDSFLOW_EXPECT(config_.max_burst_beats > 0, "burst length must be positive");
}

std::uint64_t MemoryPortModel::bytes_per_beat() const {
  return config_.data_width_bits / 8;
}

sim::Cycle MemoryPortModel::transfer_cycles(std::uint64_t bytes) const {
  if (bytes == 0) return 0;
  const std::uint64_t beats =
      (bytes + bytes_per_beat() - 1) / bytes_per_beat();
  const std::uint64_t bursts =
      (beats + config_.max_burst_beats - 1) / config_.max_burst_beats;
  return bursts * config_.burst_latency + beats;
}

sim::Cycle MemoryPortModel::pacing_cycles(std::uint64_t token_bytes) const {
  const std::uint64_t beats =
      (token_bytes + bytes_per_beat() - 1) / bytes_per_beat();
  return beats == 0 ? 1 : beats;
}

}  // namespace cdsflow::hls
