/// \file bench_scenario_sweep.cpp
/// Scenario-sweep engine: one book x N scenarios on shared grids
/// (cds/sweep_pricer.hpp) against the naive per-scenario BatchPricer loop
/// that re-deduplicates the book and re-tabulates BOTH curve columns for
/// every scenario, reported as JSON for the cross-PR perf trajectory.
///
/// The workload is the sweep's home turf: a standard-tenor book (heavy
/// schedule dedup) under deterministic Monte-Carlo hazard scenarios, where
/// the sweep shares the discount column across the whole run, re-tabulates
/// only the survival column -- W scenarios per SIMD register -- and
/// aggregates each scenario in O(grids) through the extremal-recovery
/// representatives. The headline `single_thread_speedup` compares sweep vs
/// naive at the host's active SIMD level (acceptance bar: >= 50x at the
/// full 4096 x 4096 size); `speedup_scalar_level` repeats the comparison
/// with both sides pinned to the scalar kernel.
///
/// Parity is asserted, not just reported -- the bench exits 1 unless, on
/// sampled scenarios at BOTH kernel levels, (a) the sweep's per-option
/// spreads are bit-identical to the naive loop's and (b) the O(grids)
/// aggregates are bit-identical to the full per-option scan; and (c) the
/// SweepRuntime reproduces the single-pricer aggregates bit-for-bit across
/// worker x shard-size splits. The >= 50x bar itself only warns: CI-scale
/// sizes and scalar-only hosts sit lower by design.
///
/// Usage: bench_scenario_sweep [n_options] [n_scenarios] [out.json]
///   defaults: 4096 4096 BENCH_scenario_sweep.json

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cds/batch_pricer.hpp"
#include "cds/sweep_pricer.hpp"
#include "common/format.hpp"
#include "report/table.hpp"
#include "runtime/sweep_runtime.hpp"
#include "workload/curves.hpp"
#include "workload/options.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace cdsflow;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The naive comparator: one fresh BatchPricer per scenario (grid dedup +
/// discount AND survival tabulation every time), full per-option combine,
/// full per-option aggregate scan.
std::vector<cds::SpreadResult> naive_scenario(
    const cds::TermStructure& interest, const workload::ScenarioSet& set,
    std::size_t s, const std::vector<cds::CdsOption>& book,
    cds::simd::Level level, cds::BatchPricer::Workspace& ws) {
  const cds::BatchPricer pricer(interest, set.hazard_curve(s), level);
  std::vector<cds::SpreadResult> results(book.size());
  pricer.price(book, results, ws);
  return results;
}

/// Times the naive loop over `sample` scenarios and returns seconds per
/// scenario (the loop is already an average over many scenarios, so one
/// pass is stable).
double naive_seconds_per_scenario(const cds::TermStructure& interest,
                                  const workload::ScenarioSet& set,
                                  const std::vector<cds::CdsOption>& book,
                                  cds::simd::Level level, std::size_t sample) {
  cds::BatchPricer::Workspace ws;
  // Warm the workspace and the curves.
  (void)naive_scenario(interest, set, 0, book, level, ws);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < sample; ++s) {
    const auto results = naive_scenario(interest, set, s, book, level, ws);
    (void)cds::SweepPricer::aggregate_spreads(results);
  }
  return seconds_since(t0) / static_cast<double>(sample);
}

/// Times the full sweep (aggregates only) best-of-3 and returns seconds per
/// scenario.
double sweep_seconds_per_scenario(cds::SweepPricer& sweep,
                                  const cds::ScenarioMatrix& matrix) {
  std::vector<cds::ScenarioAggregate> aggregates(matrix.count);
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)sweep.sweep(matrix, 0, matrix.count, aggregates);
    best = std::min(best, seconds_since(t0));
  }
  return best / static_cast<double>(matrix.count);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4096;
  const std::size_t n_scenarios =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4096;
  const std::string out_path =
      argc > 3 ? argv[3] : "BENCH_scenario_sweep.json";

  const std::size_t knots = 1024;
  const auto interest = workload::paper_interest_curve(knots);
  const auto hazard = workload::paper_hazard_curve(knots);
  const auto active = cds::simd::active_level();

  workload::PortfolioSpec spec;
  spec.count = n_options;
  spec.seed = 7;
  spec.maturity_tenor_grid = {1.0, 3.0, 5.0, 7.0, 10.0};
  const auto book = workload::make_portfolio(spec);
  const auto set = workload::mc_hazard_scenarios(hazard, n_scenarios);
  const auto matrix = set.matrix();

  std::cout << "== scenario sweep vs naive per-scenario loop ("
            << cds::simd::to_string(active) << ", "
            << cds::simd::lanes(active) << " lane(s)), " << n_options
            << " options x " << n_scenarios << " scenarios, " << knots
            << "-knot curves ==\n\n";

  // --- hard parity gates ----------------------------------------------------
  // Sampled scenarios, both kernel levels: per-option spreads and the
  // O(grids) aggregates must be bit-identical to the naive loop.
  bool bit_identical = true;
  std::vector<cds::simd::Level> levels = {cds::simd::Level::kScalar};
  if (active != cds::simd::Level::kScalar) levels.push_back(active);
  const std::size_t parity_sample = std::min<std::size_t>(n_scenarios, 32);
  for (const auto level : levels) {
    cds::SweepPricer sweep(interest, hazard, book, level);
    std::vector<std::vector<cds::SpreadResult>> sweep_results(n_scenarios);
    std::vector<cds::ScenarioAggregate> aggregates(n_scenarios);
    sweep.sweep(matrix, 0, n_scenarios, aggregates,
                [&](std::size_t s, std::span<const cds::SpreadResult> rs) {
                  // Keep only the sampled scenarios (stride over the set).
                  if (s % (n_scenarios / parity_sample + 1) == 0 ||
                      s < parity_sample) {
                    sweep_results[s].assign(rs.begin(), rs.end());
                  }
                });
    cds::BatchPricer::Workspace ws;
    for (std::size_t s = 0; s < n_scenarios; ++s) {
      if (sweep_results[s].empty()) continue;
      const auto naive = naive_scenario(interest, set, s, book, level, ws);
      for (std::size_t i = 0; i < naive.size(); ++i) {
        if (sweep_results[s][i].spread_bps != naive[i].spread_bps) {
          std::cerr << "FAIL: sweep spread != naive spread at level "
                    << cds::simd::to_string(level) << " scenario " << s
                    << " option " << i << '\n';
          bit_identical = false;
        }
      }
      const auto scan = cds::SweepPricer::aggregate_spreads(naive);
      if (aggregates[s].min_spread_bps != scan.min_spread_bps ||
          aggregates[s].max_spread_bps != scan.max_spread_bps) {
        std::cerr << "FAIL: O(grids) aggregate != per-option scan at level "
                  << cds::simd::to_string(level) << " scenario " << s
                  << '\n';
        bit_identical = false;
      }
      if (!bit_identical) break;
    }
    if (!bit_identical) break;
  }

  // SweepRuntime invariance: worker x shard splits reproduce the
  // single-pricer aggregates bit-for-bit over the whole set.
  if (bit_identical) {
    cds::SweepPricer reference(interest, hazard, book, active);
    const auto want = reference.sweep(matrix);
    for (const unsigned workers : {1u, 4u}) {
      for (const std::size_t shard_size : {std::size_t{0}, std::size_t{17}}) {
        runtime::SweepRuntimeConfig cfg;
        cfg.workers = workers;
        cfg.shard_size = shard_size;
        cfg.level = active;
        runtime::SweepRuntime rt(interest, hazard, book, cfg);
        const auto run = rt.run(matrix);
        for (std::size_t s = 0; s < n_scenarios; ++s) {
          if (run.aggregates[s].min_spread_bps != want[s].min_spread_bps ||
              run.aggregates[s].max_spread_bps != want[s].max_spread_bps) {
            std::cerr << "FAIL: SweepRuntime aggregates differ at workers "
                      << workers << " shard " << shard_size << " scenario "
                      << s << '\n';
            bit_identical = false;
            break;
          }
        }
      }
    }
  }
  std::cout << "parity gates: "
            << (bit_identical ? "bit-identical" : "FAILED") << "\n\n";

  // --- throughput -----------------------------------------------------------
  const std::size_t naive_sample = std::min<std::size_t>(n_scenarios, 256);
  const double naive_active =
      naive_seconds_per_scenario(interest, set, book, active, naive_sample);
  const double naive_scalar =
      active == cds::simd::Level::kScalar
          ? naive_active
          : naive_seconds_per_scenario(interest, set, book,
                                       cds::simd::Level::kScalar,
                                       naive_sample);

  cds::SweepPricer sweep_active(interest, hazard, book, active);
  const double sweep_active_s = sweep_seconds_per_scenario(sweep_active,
                                                           matrix);
  double sweep_scalar_s = sweep_active_s;
  if (active != cds::simd::Level::kScalar) {
    cds::SweepPricer sweep_scalar(interest, hazard, book,
                                  cds::simd::Level::kScalar);
    sweep_scalar_s = sweep_seconds_per_scenario(sweep_scalar, matrix);
  }

  const double speedup = naive_active / sweep_active_s;
  const double speedup_scalar = naive_scalar / sweep_scalar_s;

  std::vector<cds::ScenarioAggregate> agg(n_scenarios);
  const auto stats = sweep_active.sweep(matrix, 0, n_scenarios, agg);

  report::Table table("Single-thread scenarios/second, naive vs sweep");
  table.set_columns({"Path", "Level", "Scenarios/s", "Speedup"});
  table.add_row({"naive loop", cds::simd::to_string(active),
                 with_thousands(1.0 / naive_active, 0), "1.0x"});
  table.add_row({"sweep", cds::simd::to_string(active),
                 with_thousands(1.0 / sweep_active_s, 0),
                 fixed(speedup, 1) + "x"});
  table.add_row({"naive loop", "scalar",
                 with_thousands(1.0 / naive_scalar, 0), "1.0x"});
  table.add_row({"sweep", "scalar", with_thousands(1.0 / sweep_scalar_s, 0),
                 fixed(speedup_scalar, 1) + "x"});
  std::cout << table.render_text() << '\n';
  std::cout << "book: " << stats.options << " options on "
            << stats.unique_schedules << " unique schedule(s), "
            << stats.grid_points << " grid point(s); "
            << fixed(stats.shared_column_rate() * 100.0, 1)
            << "% of columns shared across the sweep\n";

  // Multi-lane wall throughput for reference (modelled/wall split as in the
  // batch runtime).
  runtime::SweepRuntimeConfig mt_cfg;
  mt_cfg.workers = 0;  // all cores
  mt_cfg.level = active;
  runtime::SweepRuntime mt(interest, hazard, book, mt_cfg);
  (void)mt.run(matrix);  // warm the lanes' scratch before the timed run
  const auto mt_run = mt.run(matrix);
  std::cout << "all-core runtime (" << mt_run.lanes << " lane(s)): "
            << with_thousands(mt_run.wall_scenarios_per_second, 0)
            << " scenarios/s wall\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"scenario_sweep\",\n"
       << "  \"n_options\": " << n_options << ",\n"
       << "  \"n_scenarios\": " << n_scenarios << ",\n"
       << "  \"curve_knots\": " << knots << ",\n"
       << "  \"simd_level\": \"" << cds::simd::to_string(active) << "\",\n"
       << "  \"lanes\": " << cds::simd::lanes(active) << ",\n"
       << "  \"unique_schedules\": " << stats.unique_schedules << ",\n"
       << "  \"grid_points\": " << stats.grid_points << ",\n"
       << "  \"shared_column_rate\": " << stats.shared_column_rate() << ",\n"
       << "  \"naive_scenarios_per_second\": " << 1.0 / naive_active << ",\n"
       << "  \"sweep_scenarios_per_second\": " << 1.0 / sweep_active_s
       << ",\n"
       << "  \"single_thread_speedup\": " << speedup << ",\n"
       << "  \"speedup_scalar_level\": " << speedup_scalar << ",\n"
       << "  \"mt_lanes\": " << mt_run.lanes << ",\n"
       << "  \"mt_wall_scenarios_per_second\": "
       << mt_run.wall_scenarios_per_second << ",\n"
       << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
       << "\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  std::cout << "JSON written to " << out_path << '\n';

  if (!bit_identical) {
    std::cerr << "FAIL: sweep results are not bit-identical to the naive "
                 "per-scenario loop\n";
    return 1;
  }
  if (n_options >= 4096 && n_scenarios >= 4096 && speedup < 50.0) {
    std::cerr << "warning: single-thread sweep speedup " << fixed(speedup, 1)
              << "x below the 50x acceptance bar at full size\n";
  }
  return 0;
}
