#include "cluster/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <limits>
#include <optional>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"
#include "net/codec.hpp"
#include "runtime/shard.hpp"

namespace cdsflow::cluster {
namespace {

constexpr std::uint64_t kProbeTimeoutUs = 10'000'000;

net::Client connect_with_retry(const NodeSpec& spec) {
  // ECONNREFUSED is immediate on loopback, so a worker still starting up
  // needs a retry loop rather than a socket-level timeout.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(spec.connect_timeout_seconds));
  std::string last_error;
  for (;;) {
    try {
      return spec.unix_path.empty()
                 ? net::Client::connect_tcp(spec.host, spec.tcp_port)
                 : net::Client::connect_unix(spec.unix_path);
    } catch (const Error& e) {
      last_error = e.what();
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw Error("cluster node '" + spec.label() +
                  "': connect timed out after " +
                  std::to_string(spec.connect_timeout_seconds) +
                  "s: " + last_error);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace

ClusterCoordinator::ClusterCoordinator(CoordinatorConfig config)
    : config_(std::move(config)) {
  CDSFLOW_EXPECT(!config_.nodes.empty(),
                 "cluster coordinator needs at least one node");
  clients_.reserve(config_.nodes.size());
  nodes_.reserve(config_.nodes.size());
  for (const auto& spec : config_.nodes) {
    net::Client client = connect_with_retry(spec);

    engine::ClusterNode node;
    node.address = spec.label();
    node.link = spec.link;
    double min_rtt = std::numeric_limits<double>::infinity();
    net::Frame info;
    for (unsigned i = 0; i < std::max(1u, config_.probe_repeats); ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      client.send(net::encode_node_probe(i));
      auto reply = client.read_frame_for(kProbeTimeoutUs);
      const auto t1 = std::chrono::steady_clock::now();
      CDSFLOW_EXPECT(reply.has_value(),
                     "cluster node '" + spec.label() + "': probe timed out");
      CDSFLOW_EXPECT(
          reply->type == net::FrameType::kNodeProbe && reply->probe_reply,
          "cluster node '" + spec.label() + "': unexpected probe reply (" +
              net::to_string(reply->type) + ")");
      min_rtt = std::min(
          min_rtt, std::chrono::duration<double>(t1 - t0).count());
      info = std::move(*reply);
    }
    // The wire is structural only; the capability numbers are semantic and
    // validated here.
    CDSFLOW_EXPECT(std::isfinite(info.ops_per_second) &&
                       info.ops_per_second > 0.0,
                   "cluster node '" + spec.label() +
                       "': non-positive reported throughput");
    CDSFLOW_EXPECT(std::isfinite(info.setup_seconds) &&
                       info.setup_seconds >= 0.0,
                   "cluster node '" + spec.label() +
                       "': negative reported setup time");
    CDSFLOW_EXPECT(std::isfinite(info.watts) && info.watts >= 0.0,
                   "cluster node '" + spec.label() +
                       "': negative reported power");
    node.fit.engine_name = info.engine;
    node.fit.options_per_second = info.ops_per_second;
    node.fit.setup_seconds = info.setup_seconds;
    node.fit.watts = info.watts;
    if (spec.measure_latency) {
      node.link.latency_seconds = std::max(1e-9, min_rtt / 2.0);
    }
    clients_.push_back(std::move(client));
    nodes_.push_back(std::move(node));
  }
}

engine::ClusterPlanEntry ClusterCoordinator::plan(
    std::size_t n_options) const {
  engine::BatchRequirements requirements;
  requirements.n_options = n_options;
  requirements.deadline_seconds = config_.deadline_seconds;
  std::vector<std::size_t> sizes;
  if (config_.shard_size != 0) {
    sizes.push_back(config_.shard_size);
  }
  return engine::plan_cluster(nodes_, requirements, config_.risk, sizes)
      .front();
}

ClusterRun ClusterCoordinator::price(
    const std::vector<cds::CdsOption>& options) {
  ClusterRun out;
  out.n_nodes = nodes_.size();
  if (options.empty()) {
    return out;
  }

  out.plan = plan(options.size());
  out.shard_size = out.plan.shard_size;
  const auto shards = runtime::plan_shards(options.size(), out.shard_size);
  CDSFLOW_ASSERT(shards.size() == out.plan.n_shards,
                 "cluster plan shard count mismatch");

  struct ShardState {
    std::vector<cds::SpreadResult> results;
    std::vector<cds::Sensitivities> greeks;
    double engine_seconds = 0.0;
    std::size_t node = 0;
    bool resubmitted = false;
  };
  // Not board-guarded: each slot is owned by exactly one drive thread at a
  // time (a shard is handed out under the lock, and an orphaned shard is
  // only re-handed-out after its owner stopped touching the slot), and the
  // merge below reads the slots after every drive thread has joined.
  std::vector<ShardState> done(shards.size());

  // The dispatch board: per-node queues seeded from the plan, plus an
  // orphan queue a dead node's unfinished shards fall back to. A shard
  // counts `remaining` until some node completes it, so a node loss never
  // loses work -- survivors drain the orphans after their own queues.
  struct Board {
    Mutex mu;
    std::condition_variable cv;
    std::vector<std::deque<std::size_t>> queue CDSFLOW_GUARDED_BY(mu);
    std::deque<std::size_t> orphans CDSFLOW_GUARDED_BY(mu);
    std::size_t remaining CDSFLOW_GUARDED_BY(mu) = 0;
    std::size_t live CDSFLOW_GUARDED_BY(mu) = 0;
    std::vector<bool> dead CDSFLOW_GUARDED_BY(mu);
    std::string fatal CDSFLOW_GUARDED_BY(mu);
  } board;
  board.queue.resize(nodes_.size());
  board.dead.assign(nodes_.size(), false);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    board.queue[out.plan.node_of_shard[i]].push_back(i);
  }
  board.remaining = shards.size();
  board.live = nodes_.size();

  const auto response_timeout_us = static_cast<std::uint64_t>(
      config_.response_timeout_seconds * 1e6);

  auto drive_node = [&](std::size_t k) {
    for (;;) {
      std::size_t idx = 0;
      bool from_orphans = false;
      {
        UniqueLock lock(board.mu);
        board.cv.wait(lock.native(), [&]() CDSFLOW_REQUIRES(board.mu) {
          return !board.fatal.empty() || board.remaining == 0 ||
                 !board.queue[k].empty() || !board.orphans.empty();
        });
        if (!board.fatal.empty() || board.remaining == 0) {
          return;
        }
        if (!board.queue[k].empty()) {
          idx = board.queue[k].front();
          board.queue[k].pop_front();
        } else {
          idx = board.orphans.front();
          board.orphans.pop_front();
          from_orphans = true;
        }
      }

      const auto& shard = shards[idx];
      const std::vector<cds::CdsOption> slice(options.begin() + shard.begin,
                                              options.begin() + shard.end);
      bool priced = false;
      std::string node_failure;
      std::string fatal;
      try {
        clients_[k].send(net::encode_shard_price(
            static_cast<std::uint32_t>(idx), slice, config_.risk));
        auto reply = clients_[k].read_frame_for(response_timeout_us);
        if (!reply.has_value()) {
          node_failure = "shard response timed out";
        } else if (reply->type == net::FrameType::kShardResult) {
          if (reply->request != idx ||
              reply->results.size() != shard.size() ||
              reply->risk != config_.risk) {
            fatal = "cluster node '" + nodes_[k].address +
                    "': shard result does not match its request";
          } else {
            done[idx].results = std::move(reply->results);
            done[idx].greeks = std::move(reply->greeks);
            done[idx].engine_seconds = reply->engine_seconds;
            priced = true;
          }
        } else if (reply->type == net::FrameType::kReject) {
          // A reject is a configuration error (wrong mode, bad options) --
          // resubmitting elsewhere would just collect the same answer.
          fatal = "cluster node '" + nodes_[k].address +
                  "' rejected a shard: " + net::to_string(reply->reason) +
                  (reply->detail.empty() ? "" : " (" + reply->detail + ")");
        } else {
          fatal = "cluster node '" + nodes_[k].address +
                  "': unexpected shard reply (" +
                  net::to_string(reply->type) + ")";
        }
      } catch (const Error& e) {
        node_failure = e.what();
      }

      if (!fatal.empty()) {
        MutexLock lock(board.mu);
        if (board.fatal.empty()) {
          board.fatal = std::move(fatal);
        }
        board.cv.notify_all();
        return;
      }
      if (priced) {
        MutexLock lock(board.mu);
        done[idx].node = k;
        done[idx].resubmitted = from_orphans;
        if (--board.remaining == 0) {
          board.cv.notify_all();
        }
        continue;
      }
      // This node is dead for the run: orphan the in-flight shard and the
      // rest of its queue, then let the survivors drain them.
      MutexLock lock(board.mu);
      board.orphans.push_back(idx);
      while (!board.queue[k].empty()) {
        board.orphans.push_back(board.queue[k].front());
        board.queue[k].pop_front();
      }
      board.dead[k] = true;
      --board.live;
      if (board.live == 0 && board.remaining > 0 && board.fatal.empty()) {
        board.fatal = "all cluster nodes lost with shards outstanding "
                      "(last: node '" +
                      nodes_[k].address + "': " + node_failure + ")";
      }
      board.cv.notify_all();
      return;
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(nodes_.size());
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    threads.emplace_back(drive_node, k);
  }
  for (auto& t : threads) {
    t.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  // The joins above publish the drive threads' final writes, but the board
  // stays locked for these reads anyway: the lock costs nothing after the
  // join, keeps every board access under its capability, and lets the
  // thread-safety analysis prove the whole dispatch instead of special-
  // casing the post-join tail.
  std::string fatal_message;
  std::size_t shards_remaining = 0;
  std::size_t nodes_dead = 0;
  {
    MutexLock lock(board.mu);
    fatal_message = std::move(board.fatal);
    shards_remaining = board.remaining;
    nodes_dead = static_cast<std::size_t>(
        std::count(board.dead.begin(), board.dead.end(), true));
  }
  if (!fatal_message.empty()) {
    throw Error(fatal_message);
  }
  CDSFLOW_ASSERT(shards_remaining == 0, "cluster dispatch left shards undone");

  // Deterministic merge in shard (= submission) order -- the exact
  // PortfolioRuntime contract, so the merged values are bit-identical to a
  // single-process run of the same engine.
  out.run.results.reserve(options.size());
  out.shards.reserve(shards.size());
  std::vector<double> node_busy(nodes_.size(), 0.0);
  for (const auto& shard : shards) {
    auto& state = done[shard.index];
    CDSFLOW_ASSERT(state.results.size() == shard.size(),
                   "shard result count mismatch");
    out.run.results.insert(out.run.results.end(), state.results.begin(),
                           state.results.end());
    if (config_.risk) {
      CDSFLOW_ASSERT(state.greeks.size() == shard.size(),
                     "shard sensitivity count mismatch");
      out.run.sensitivities.insert(out.run.sensitivities.end(),
                                   state.greeks.begin(), state.greeks.end());
    }
    const std::uint64_t bytes =
        net::shard_price_frame_bytes(shard.size()) +
        net::shard_result_frame_bytes(shard.size(), config_.risk);
    const double link_seconds =
        nodes_[state.node].link.seconds_for(bytes);
    node_busy[state.node] += state.engine_seconds + link_seconds;
    out.run.kernel_seconds += state.engine_seconds;
    out.run.transfer_seconds += link_seconds;
    out.run.invocations += 1;
    if (state.resubmitted) {
      ++out.resubmissions;
    }
    out.shards.push_back({shard.index, shard.begin, shard.end, state.node,
                          state.engine_seconds, link_seconds,
                          state.resubmitted});
  }
  out.run.total_seconds =
      *std::max_element(node_busy.begin(), node_busy.end());
  CDSFLOW_ASSERT(out.run.total_seconds > 0.0,
                 "merged cluster run must take non-zero time");
  out.run.options_per_second =
      static_cast<double>(options.size()) / out.run.total_seconds;
  out.nodes_lost = nodes_dead;

  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  if (out.wall_seconds > 0.0) {
    out.wall_options_per_second =
        static_cast<double>(options.size()) / out.wall_seconds;
  }
  return out;
}

}  // namespace cdsflow::cluster
