/// \file thread_pool.hpp
/// A small fixed-size worker pool for the batch and streaming runtimes.
///
/// Deliberately minimal: FIFO task queue, std::future-based completion, no
/// work stealing. The runtimes submit one task per shard / micro-batch;
/// fairness and load balance come from oversubscription (see shard.hpp), not
/// from the pool. Kept as its own component so the batch runtime, the
/// streaming ingest runtime and future request servers all share it.
///
/// Shutdown contract:
///   * stop() (also run by the destructor) closes the submission window,
///     lets the workers drain every task already queued, and joins them.
///     It is idempotent and safe to call from any thread other than a pool
///     worker.
///   * Once stop has begun, submit() FAILS FAST by throwing cdsflow::Error
///     instead of enqueueing a task that no worker may ever run -- a late
///     submit racing the destructor therefore surfaces as an exception at
///     the submission site, never as a silently-dropped task or a future
///     that hangs forever.
///   * Tasks queued before stop began always run to completion (join
///     semantics, never detach), and their futures resolve normally.
///   * Callers must still ensure the ThreadPool object outlives every
///     thread that may call submit(): submitting to a pool whose destructor
///     has *finished* is a use-after-free like any other. Use stop() to end
///     the accepting period at a well-defined point before teardown.

#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace cdsflow::runtime {

class ThreadPool {
 public:
  /// Starts `workers` threads. `workers` must be > 0.
  explicit ThreadPool(unsigned workers);

  /// Equivalent to stop().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(threads_.size()); }

  /// Enqueues a task; the future resolves when it has run (or carries the
  /// exception it threw). Throws cdsflow::Error once stop() has begun (see
  /// the shutdown contract above).
  std::future<void> submit(std::function<void()> task)
      CDSFLOW_EXCLUDES(mutex_);

  /// Closes the submission window, drains the queued tasks and joins the
  /// workers. Idempotent; must not be called from a pool worker.
  void stop() CDSFLOW_EXCLUDES(stop_mutex_, mutex_);

 private:
  void worker_loop() CDSFLOW_EXCLUDES(mutex_);

  /// Lock order: stop_mutex_ before mutex_ (stop() takes both; nothing
  /// else touches stop_mutex_). See docs/CONCURRENCY.md.
  Mutex mutex_ CDSFLOW_ACQUIRED_AFTER(stop_mutex_);
  std::condition_variable wake_;
  std::deque<std::packaged_task<void()>> queue_ CDSFLOW_GUARDED_BY(mutex_);
  bool stopping_ CDSFLOW_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> threads_;

  /// Serialises stop() against itself (destructor vs explicit call).
  Mutex stop_mutex_;
  bool joined_ CDSFLOW_GUARDED_BY(stop_mutex_) = false;
};

}  // namespace cdsflow::runtime
