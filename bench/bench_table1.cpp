/// \file bench_table1.cpp
/// Reproduces paper Table I: "Performance of different versions of our FPGA
/// CDS engine, against that of a Cascade Lake Xeon Platinum CPU single-core
/// and Xilinx Vitis library implementation."
///
/// Protocol as in the paper (Sec. II-B): 1024 interest and 1024 hazard
/// rates, results averaged over three runs, PCIe transfer overhead included.
/// FPGA rows are simulated kernel cycles at 300 MHz plus modelled host
/// costs; the CPU row is measured natively on this host (the paper's was a
/// Xeon 8260M -- absolute CPU numbers therefore differ with hardware, the
/// FPGA/baseline ratios are the reproduction target).
///
/// Usage: bench_table1 [n_options] [runs]

#include <cstdlib>
#include <iostream>

#include "engines/registry.hpp"
#include "report/experiment.hpp"
#include "report/paper.hpp"
#include "workload/scenario.hpp"

namespace {

constexpr std::size_t kDefaultOptions = 512;

}  // namespace

int main(int argc, char** argv) {
  using namespace cdsflow;
  const std::size_t n_options =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : kDefaultOptions;
  const int runs = argc > 2 ? std::atoi(argv[2])
                            : report::paper::kRunsPerMeasurement;

  const auto scenario = workload::paper_scenario(n_options);
  std::cout << "== Table I reproduction ==\n"
            << "scenario: " << scenario.description << '\n'
            << "options: " << n_options << ", runs averaged: " << runs
            << "\n\n";

  struct RowSpec {
    const char* engine;
    const char* description;
    double paper_value;
  };
  const RowSpec rows[] = {
      {"cpu", "Xeon Platinum CPU core (measured on this host)",
       report::paper::kCpuSingleCoreOptsPerSec},
      {"xilinx-baseline", "Xilinx Vitis library CDS engine",
       report::paper::kXilinxLibraryOptsPerSec},
      {"dataflow", "Optimised Dataflow CDS engine",
       report::paper::kOptimisedDataflowOptsPerSec},
      {"dataflow-interoption", "Dataflow inter-options",
       report::paper::kInterOptionOptsPerSec},
      {"vectorised", "Vectorisation of dataflow engine",
       report::paper::kVectorisedOptsPerSec},
  };

  std::vector<report::ComparisonRow> comparison;
  for (const auto& spec : rows) {
    auto engine =
        engine::make_engine(spec.engine, scenario.interest, scenario.hazard);
    const auto m = report::measure(*engine, scenario.options, runs);
    comparison.push_back({spec.description, m.mean_ops(), spec.paper_value});
    std::cerr << "  measured " << spec.engine << ": " << m.mean_ops()
              << " options/s\n";
  }

  const auto table = report::comparison_table(
      "Table I -- Performance of engine versions", "Options/second",
      comparison);
  std::cout << table.render_text() << '\n';

  // Headline ratios (paper Sec. III): dataflow rewrite ~8x over the library
  // engine, ~2x steps between generations.
  const double lib = comparison[1].measured;
  const double vec = comparison[4].measured;
  std::cout << "vectorised / library speedup: measured "
            << vec / lib << "x, paper "
            << report::paper::kSpeedupVsLibrary << "x\n";
  return 0;
}
