/// \file power.hpp
/// Power models for the Table II reproduction.
///
/// SUBSTITUTION NOTE: the paper measures board power on the U280 (via the
/// card's satellite controller) and CPU package power; this environment has
/// neither an FPGA nor RAPL access, so power is *modelled* with affine fits
/// calibrated against Table II itself (see DESIGN.md Sec. 2). The models
/// reproduce the two facts the paper's conclusions rest on: FPGA power is
/// nearly flat in engine count (static shell/HBM power dominates), and the
/// loaded CPU draws ~4.7x more than the loaded FPGA.

#pragma once

#include <string>

namespace cdsflow::fpga {

/// FPGA board power: P(n) = static + n * per_engine.
/// CALIBRATION: Table II reports 35.86 W / 35.79 W / 37.38 W at 1/2/5
/// engines; least squares gives ~35.4 W static and ~0.4 W per engine (the
/// 2-engine reading sits 0.4 W below the fit -- measurement noise the paper
/// itself shows).
struct FpgaPowerModel {
  double static_watts = 35.4;
  double per_engine_watts = 0.4;

  double watts(unsigned n_engines) const {
    return static_watts + per_engine_watts * static_cast<double>(n_engines);
  }
};

/// CPU package power: P(n) = idle + n * per_core.
/// CALIBRATION: Table II reports 175.39 W with 24 active cores on a Xeon
/// Platinum 8260M (165 W TDP); an idle package + uncore of ~55 W and ~5 W
/// per active core reproduce that reading.
struct CpuPowerModel {
  double idle_watts = 55.0;
  double per_core_watts = 5.0;

  double watts(unsigned active_cores) const {
    return idle_watts + per_core_watts * static_cast<double>(active_cores);
  }
};

/// options/s / W -- the paper's efficiency metric.
double power_efficiency(double options_per_second, double watts);

}  // namespace cdsflow::fpga
