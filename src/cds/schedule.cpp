#include "cds/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cdsflow::cds {

namespace {

/// Tolerance for "maturity lands exactly on a payment date": avoids a
/// zero-length stub period from floating-point representation of dates like
/// 5.0 * 4 payments.
constexpr double kDateEps = 1e-9;

}  // namespace

std::size_t schedule_size(const CdsOption& option) {
  option.validate();
  const double periods = option.maturity_years * option.payment_frequency;
  // ceil with tolerance: maturity exactly on a payment date does not open a
  // new (empty) period.
  const auto n = static_cast<std::size_t>(std::ceil(periods - kDateEps));
  return n == 0 ? 1 : n;
}

std::vector<TimePoint> make_schedule(const CdsOption& option) {
  std::vector<TimePoint> points;
  make_schedule(option, points);
  return points;
}

std::size_t make_schedule(const CdsOption& option,
                          std::vector<TimePoint>& out) {
  const std::size_t n = schedule_size(option);
  // Grow geometrically: reserve(size + n) on every append would reallocate
  // to the exact request each time and turn arena filling quadratic.
  if (out.size() + n > out.capacity()) {
    out.reserve(std::max(out.size() + n, 2 * out.capacity()));
  }
  const double step = 1.0 / option.payment_frequency;
  double prev = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    double t = static_cast<double>(i) * step;
    if (i == n || t > option.maturity_years) t = option.maturity_years;
    CDSFLOW_ASSERT(t > prev, "schedule produced a non-increasing time point");
    out.push_back({t, t - prev});
    prev = t;
  }
  CDSFLOW_ASSERT(out.back().t == option.maturity_years,
                 "schedule must end at maturity");
  return n;
}

}  // namespace cdsflow::cds
