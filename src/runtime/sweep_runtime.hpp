/// \file sweep_runtime.hpp
/// Scenario-axis scaling layer: shard one book's scenario sweep across a
/// pool of SweepPricer replicas.
///
/// The batch runtime shards the *options* axis; the sweep runtime shards
/// the *scenario* axis with the identical recipe and the identical
/// determinism contract: shards are contiguous scenario ranges, each range
/// is swept whole by one replica, and per-shard outputs land in disjoint
/// slices of one aggregate array -- submission order by construction,
/// whichever lane finished first. Every replica prices the same book on
/// the same grids at the same kernel level, and SweepPricer's per-scenario
/// values are invariant under scenario grouping (vector_kernel.hpp), so
/// the merged aggregates are bit-identical across worker counts and shard
/// sizes (tested in test_sweep_pricer).
///
/// Modelled vs wall throughput mirrors PortfolioRuntime: modelled is the
/// deterministic list-schedule makespan of measured per-shard seconds over
/// the lanes (meaningful on a 1-core CI box), wall is elapsed host time of
/// the parallel section.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cds/curve.hpp"
#include "cds/sweep_pricer.hpp"
#include "cds/types.hpp"

namespace cdsflow::runtime {

struct SweepRuntimeConfig {
  /// Worker threads == replica lanes. 0 selects hardware_concurrency().
  unsigned workers = 0;
  /// Scenarios per shard. 0 picks auto_shard_size() over the scenario count.
  std::size_t shard_size = 0;
  /// Kernel level of every replica (clamped to the host, like BatchPricer).
  cds::simd::Level level = cds::simd::Level::kScalar;
};

/// Per-shard accounting, in shard (= submission) order.
struct SweepShardOutcome {
  std::size_t index = 0;
  std::size_t begin = 0;  ///< first scenario (inclusive)
  std::size_t end = 0;    ///< one past the last scenario
  double seconds = 0.0;   ///< measured sweep time of this shard
  unsigned lane = 0;      ///< deterministic list-schedule lane
};

struct SweepRun {
  /// Per-scenario aggregates in scenario (= submission) order.
  std::vector<cds::ScenarioAggregate> aggregates;
  /// Shard stats merged in shard order.
  cds::SweepStats stats;
  std::vector<SweepShardOutcome> shards;

  unsigned lanes = 1;
  std::size_t shard_size = 0;

  /// Modelled list-schedule makespan of the per-shard times.
  double modelled_seconds = 0.0;
  double modelled_scenarios_per_second = 0.0;
  /// Measured host wall time of the parallel section.
  double wall_seconds = 0.0;
  double wall_scenarios_per_second = 0.0;
};

class SweepRuntime {
 public:
  /// Builds one SweepPricer replica per lane up front (each replica dedups
  /// the book and tabulates the base grids once -- the sweep's setup cost,
  /// paid per lane exactly like the card pays per engine replica). Throws
  /// cdsflow::Error on an empty book or invalid options.
  SweepRuntime(cds::TermStructure interest, cds::TermStructure hazard,
               std::span<const cds::CdsOption> options,
               SweepRuntimeConfig config = {});

  SweepRuntime(const SweepRuntime&) = delete;
  SweepRuntime& operator=(const SweepRuntime&) = delete;

  /// Sweeps the whole scenario set. An empty set returns an empty run.
  SweepRun run(const cds::ScenarioMatrix& scenarios);

  unsigned lanes() const { return lanes_; }
  const SweepRuntimeConfig& config() const { return config_; }

 private:
  SweepRuntimeConfig config_;
  unsigned lanes_;
  std::vector<cds::SweepPricer> pricers_;
};

}  // namespace cdsflow::runtime
