#include "common/format.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace cdsflow {

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string with_thousands(double value, int decimals) {
  std::string base = fixed(value, decimals);
  // Locate span of integer digits (skip sign, stop at '.').
  std::size_t begin = (!base.empty() && (base[0] == '-' || base[0] == '+')) ? 1 : 0;
  std::size_t end = base.find('.');
  if (end == std::string::npos) end = base.size();
  std::string out = base.substr(0, begin);
  const std::size_t digits = end - begin;
  for (std::size_t i = 0; i < digits; ++i) {
    if (i != 0 && (digits - i) % 3 == 0) out += ',';
    out += base[begin + i];
  }
  out += base.substr(end);
  return out;
}

std::string compact(double value) {
  const double mag = std::fabs(value);
  if (mag != 0.0 && (mag >= 1e7 || mag < 1e-3)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3e", value);
    return buf;
  }
  return fixed(value, mag >= 100 ? 1 : 4);
}

std::string format_duration_ns(double ns) {
  const char* unit = "ns";
  double v = ns;
  if (std::fabs(v) >= 1e9) {
    v /= 1e9;
    unit = "s";
  } else if (std::fabs(v) >= 1e6) {
    v /= 1e6;
    unit = "ms";
  } else if (std::fabs(v) >= 1e3) {
    v /= 1e3;
    unit = "us";
  }
  std::ostringstream os;
  os << fixed(v, 2) << ' ' << unit;
  return os.str();
}

std::string format_cycles(std::uint64_t cycles, double clock_hz) {
  std::ostringstream os;
  os << with_thousands(static_cast<double>(cycles), 0) << " cycles ("
     << format_duration_ns(static_cast<double>(cycles) / clock_hz * 1e9)
     << ")";
  return os.str();
}

std::string format_rate(double per_second, const std::string& unit) {
  return with_thousands(per_second, 2) + ' ' + unit + "/s";
}

std::string format_percent_delta(double measured, double reference) {
  if (reference == 0.0) return "n/a";
  const double pct = (measured - reference) / reference * 100.0;
  std::ostringstream os;
  os << (pct >= 0 ? "+" : "") << fixed(pct, 1) << '%';
  return os.str();
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace cdsflow
