/// \file bench_ext_calibration.cpp
/// Extension micro-benchmarks: the calibration-side tools built around the
/// engine -- hazard-curve bootstrapping and finite-difference risk -- which
/// dominate a desk's end-of-day pipeline alongside raw pricing.

#include <benchmark/benchmark.h>

#include "cds/bootstrap.hpp"
#include "cds/risk.hpp"
#include "workload/curves.hpp"

namespace {

using namespace cdsflow;

const cds::TermStructure& interest_curve() {
  static const cds::TermStructure c = workload::paper_interest_curve(256);
  return c;
}

const cds::TermStructure& hazard_curve() {
  static const cds::TermStructure c = workload::paper_hazard_curve(256);
  return c;
}

void BM_BootstrapFiveTenorCurve(benchmark::State& state) {
  const std::vector<cds::SpreadQuote> quotes = {
      {1.0, 110.0}, {3.0, 150.0}, {5.0, 185.0}, {7.0, 205.0}, {10.0, 230.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cds::bootstrap_hazard_curve(interest_curve(), quotes));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(quotes.size()));
}
BENCHMARK(BM_BootstrapFiveTenorCurve)->Unit(benchmark::kMillisecond);

void BM_Sensitivities(benchmark::State& state) {
  const cds::CdsOption option{.id = 0,
                              .maturity_years = 5.0,
                              .payment_frequency = 4.0,
                              .recovery_rate = 0.4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cds::compute_sensitivities(interest_curve(), hazard_curve(), option));
  }
}
BENCHMARK(BM_Sensitivities)->Unit(benchmark::kMicrosecond);

void BM_Cs01Ladder(benchmark::State& state) {
  const cds::CdsOption option{.id = 0,
                              .maturity_years = 7.0,
                              .payment_frequency = 4.0,
                              .recovery_rate = 0.4};
  const std::vector<double> edges = {0.0, 1.0, 2.0, 3.0, 5.0, 7.0, 10.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cds::cs01_ladder(interest_curve(), hazard_curve(), option, edges));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(edges.size() - 1));
}
BENCHMARK(BM_Cs01Ladder)->Unit(benchmark::kMicrosecond);

void BM_ParallelBump(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(cds::parallel_bump(hazard_curve(), 1e-4));
  }
}
BENCHMARK(BM_ParallelBump);

}  // namespace
