/// \file test_workload.cpp
/// Unit tests for workload generation: curve shapes, portfolio draws,
/// determinism, scenario composition.

#include <gtest/gtest.h>

#include "cds/schedule.hpp"
#include "common/error.hpp"
#include "workload/curves.hpp"
#include "workload/options.hpp"
#include "workload/scenario.hpp"

namespace cdsflow::workload {
namespace {

TEST(Curves, SpecHonoursPointCountAndSpan) {
  CurveSpec spec;
  spec.points = 100;
  spec.span_years = 12.0;
  const auto c = make_curve(spec);
  EXPECT_EQ(c.size(), 100u);
  EXPECT_DOUBLE_EQ(c.max_time(), 12.0);
  EXPECT_GT(c.time(0), 0.0);
}

TEST(Curves, AllValuesPositive) {
  for (const auto shape :
       {CurveShape::kFlat, CurveShape::kUpwardSloping, CurveShape::kHumped,
        CurveShape::kStressed}) {
    CurveSpec spec;
    spec.shape = shape;
    const auto c = make_curve(spec);
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_GT(c.value(i), 0.0) << to_string(shape) << " @ " << i;
    }
  }
}

TEST(Curves, FlatWithoutJitterIsExactlyFlat) {
  CurveSpec spec;
  spec.shape = CurveShape::kFlat;
  spec.jitter = 0.0;
  spec.base_rate = 0.025;
  const auto c = make_curve(spec);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_DOUBLE_EQ(c.value(i), 0.025);
  }
}

TEST(Curves, UpwardSlopingSlopesUp) {
  CurveSpec spec;
  spec.shape = CurveShape::kUpwardSloping;
  spec.jitter = 0.0;
  const auto c = make_curve(spec);
  EXPECT_GT(c.value(c.size() - 1), c.value(0));
}

TEST(Curves, StressedSlopesDown) {
  CurveSpec spec;
  spec.shape = CurveShape::kStressed;
  spec.jitter = 0.0;
  const auto c = make_curve(spec);
  EXPECT_LT(c.value(c.size() - 1), c.value(0));
}

TEST(Curves, HumpedPeaksInTheMiddle) {
  CurveSpec spec;
  spec.shape = CurveShape::kHumped;
  spec.jitter = 0.0;
  const auto c = make_curve(spec);
  const std::size_t peak_region = c.size() * 2 / 5;
  EXPECT_GT(c.value(peak_region), c.value(0));
  EXPECT_GT(c.value(peak_region), c.value(c.size() - 1));
}

TEST(Curves, DeterministicForSameSeed) {
  CurveSpec spec;
  spec.seed = 77;
  const auto a = make_curve(spec);
  const auto b = make_curve(spec);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.value(i), b.value(i));
  }
  spec.seed = 78;
  const auto c = make_curve(spec);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.value(i) != c.value(i)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Curves, RejectsBadSpecs) {
  CurveSpec spec;
  spec.points = 0;
  EXPECT_THROW(make_curve(spec), Error);
  spec = {};
  spec.span_years = 0.0;
  EXPECT_THROW(make_curve(spec), Error);
  spec = {};
  spec.jitter = 1.5;
  EXPECT_THROW(make_curve(spec), Error);
}

TEST(Curves, PaperCurvesHave1024Points) {
  EXPECT_EQ(paper_interest_curve().size(), 1024u);
  EXPECT_EQ(paper_hazard_curve().size(), 1024u);
}

TEST(Portfolio, CountAndRanges) {
  PortfolioSpec spec;
  spec.count = 200;
  const auto book = make_portfolio(spec);
  ASSERT_EQ(book.size(), 200u);
  for (std::size_t i = 0; i < book.size(); ++i) {
    const auto& o = book[i];
    EXPECT_EQ(o.id, static_cast<std::int32_t>(i));
    EXPECT_GE(o.maturity_years, spec.maturity_min_years);
    EXPECT_LT(o.maturity_years, spec.maturity_max_years);
    EXPECT_GE(o.recovery_rate, spec.recovery_min);
    EXPECT_LT(o.recovery_rate, spec.recovery_max + 1e-12);
    EXPECT_EQ(o.payment_frequency, 4.0);  // default all-quarterly
  }
}

TEST(Portfolio, FrequencyMixRespected) {
  PortfolioSpec spec;
  spec.count = 500;
  spec.frequencies = {2.0, 12.0};
  spec.frequency_weights = {1.0, 1.0};
  const auto book = make_portfolio(spec);
  int semi = 0, monthly = 0;
  for (const auto& o : book) {
    if (o.payment_frequency == 2.0) ++semi;
    if (o.payment_frequency == 12.0) ++monthly;
  }
  EXPECT_EQ(semi + monthly, 500);
  EXPECT_GT(semi, 150);
  EXPECT_GT(monthly, 150);
}

TEST(Portfolio, DeterministicAndSeedSensitive) {
  PortfolioSpec spec;
  spec.count = 50;
  spec.seed = 5;
  const auto a = make_portfolio(spec);
  const auto b = make_portfolio(spec);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].maturity_years, b[i].maturity_years);
  }
  spec.seed = 6;
  const auto c = make_portfolio(spec);
  EXPECT_NE(a[0].maturity_years, c[0].maturity_years);
}

TEST(Portfolio, ValidationRejectsBadSpecs) {
  PortfolioSpec spec;
  spec.count = 0;
  EXPECT_THROW(make_portfolio(spec), Error);
  spec = {};
  spec.maturity_min_years = 5.0;
  spec.maturity_max_years = 1.0;
  EXPECT_THROW(make_portfolio(spec), Error);
  spec = {};
  spec.frequencies = {4.0};
  spec.frequency_weights = {1.0, 2.0};
  EXPECT_THROW(make_portfolio(spec), Error);
  spec = {};
  spec.recovery_max = 1.0;
  EXPECT_THROW(make_portfolio(spec), Error);
}

TEST(Portfolio, TotalTimePointsMatchesSchedules) {
  PortfolioSpec spec;
  spec.count = 20;
  const auto book = make_portfolio(spec);
  std::uint64_t expected = 0;
  for (const auto& o : book) expected += cds::schedule_size(o);
  EXPECT_EQ(total_time_points(book), expected);
  EXPECT_GT(expected, 0u);
}

TEST(Scenario, PaperScenarioShape) {
  const auto s = paper_scenario(64);
  EXPECT_EQ(s.interest.size(), 1024u);
  EXPECT_EQ(s.hazard.size(), 1024u);
  EXPECT_EQ(s.options.size(), 64u);
  EXPECT_EQ(s.name, "paper");
  // The calibrated option mix averages ~22 time points per option.
  const double avg_tp = static_cast<double>(total_time_points(s.options)) /
                        static_cast<double>(s.options.size());
  EXPECT_GT(avg_tp, 18.0);
  EXPECT_LT(avg_tp, 26.0);
}

TEST(Scenario, SmokeScenarioIsSmall) {
  const auto s = smoke_scenario();
  EXPECT_LT(s.interest.size(), 128u);
  EXPECT_FALSE(s.options.empty());
}

TEST(Scenario, StressedScenarioHasElevatedHazards) {
  const auto stressed = stressed_scenario(16);
  const auto normal = paper_scenario(16);
  EXPECT_GT(stressed.hazard.value(0), normal.hazard.value(0));
}

TEST(Scenario, SeedChangesOptionsNotCurves) {
  const auto a = paper_scenario(16, 1);
  const auto b = paper_scenario(16, 2);
  EXPECT_DOUBLE_EQ(a.interest.value(0), b.interest.value(0));
  EXPECT_NE(a.options[0].maturity_years, b.options[0].maturity_years);
}

}  // namespace
}  // namespace cdsflow::workload
