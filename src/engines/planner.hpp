/// \file planner.hpp
/// Probe-calibrated, deadline-aware capacity planning.
///
/// The paper's motivation (Sec. I): banks batch-process financial models
/// "for instance overnight, which must still occur within specific time
/// constraints". Given a book size, a deadline, and the available back-ends
/// (CPU threads, 1..max FPGA engines), the planner measures each candidate,
/// discards those that miss the deadline, and ranks the rest by energy
/// (power model x runtime) -- the decision a capacity planner actually makes
/// with Table II in hand.
///
/// The planning dataflow is probe -> fit -> enumerate -> rank:
///
///   1. *probe*  -- enumerate_backends() measures every candidate at two or
///      more workload sizes. Natively executed CPU candidates get a
///      discarded warmup run and the best of N timed repeats (first-touch
///      allocation and thread-spawn noise otherwise inverts rankings at
///      probe size); simulated FPGA candidates report deterministic modelled
///      time and are measured once per size.
///   2. *fit*    -- fit_backend_model() fits an affine cost model
///      seconds(n) = setup_seconds + n / options_per_second per candidate.
///      A single-size linear extrapolation systematically misprojects
///      back-ends with a large fixed setup: the batch kernel's grid dedup +
///      tabulation dominates a 128-option probe yet amortises to nothing at
///      book size (the effect that makes streaming-Greeks engines fast at
///      scale, arXiv:2212.13977).
///   3. *enumerate* -- plan_runtime() expands candidates into full
///      runtime::RuntimeConfig plans (engine x workers x shard_size,
///      including auto_shard_size and a setup-aware shard size that avoids
///      paying the batch kernel's setup per tiny shard) and projects each
///      with the runtime's own deterministic list schedule
///      (runtime::list_schedule_makespan), so the projection prices exactly
///      the schedule the runtime will execute.
///   4. *rank*   -- deadline-meeting plans first (projected energy
///      ascending), then the rest (projected time ascending).
///      best_runtime_plan() yields the RuntimeConfig to hand directly to
///      runtime::PortfolioRuntime.
///
/// plan_batch()/best_plan() survive as the bare-back-end projection (one
/// back-end pricing the whole batch as a single shard), now on the fitted
/// affine model.

#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cds/curve.hpp"
#include "common/error.hpp"
#include "engines/cpu_engine.hpp"
#include "fpga/power.hpp"
#include "fpga/resource.hpp"
#include "runtime/portfolio_runtime.hpp"

namespace cdsflow::engine {

/// One timed probe run: `n_options` priced in `seconds` (best of the timed
/// repeats for CPU candidates, deterministic modelled time for simulated
/// ones).
struct ProbeMeasurement {
  std::size_t n_options = 0;
  double seconds = 0.0;
};

/// One candidate back-end with its fitted affine cost model.
struct BackendCandidate {
  /// Engine registry name ("cpu-batch", "cpu-mt8", "multi-3", ...).
  std::string engine_name;
  /// Modelled electrical power while running.
  double watts = 0.0;
  /// Marginal throughput: options/second once the per-batch setup has
  /// amortised (1 / per-option seconds of the fitted model).
  double options_per_second = 0.0;
  /// Fixed cost paid once per batch (per shard, under the sharded runtime):
  /// grid dedup + tabulation for the batch kernel, thread spawn for -mt
  /// engines, transfer setup for the simulated cards. 0 reproduces the old
  /// linear model, so hand-built candidates stay valid.
  double setup_seconds = 0.0;
  /// The measurements the model was fitted from (empty for hand-built
  /// candidates).
  std::vector<ProbeMeasurement> probes;

  double per_option_seconds() const { return 1.0 / options_per_second; }
  /// Projected batch time under the fitted affine model. The pre-fit
  /// planner computed n / probe_throughput here, which overcharges
  /// setup-heavy back-ends by probe-to-batch extrapolation.
  double seconds_for(std::uint64_t n_options) const {
    return setup_seconds +
           static_cast<double>(n_options) / options_per_second;
  }
  double joules_for(std::uint64_t n_options) const {
    return watts * seconds_for(n_options);
  }
};

/// Fits the affine cost model seconds(n) = setup + n * per_option over the
/// probe measurements (least squares; exact through two points). With one
/// distinct probe size the model degrades to linear (setup = 0). Noise
/// guards: a non-positive fitted slope or a negative intercept falls back
/// to the through-origin linear fit. Throws cdsflow::Error on empty probes
/// or non-positive sizes/times.
BackendCandidate fit_backend_model(std::string engine_name, double watts,
                                   std::vector<ProbeMeasurement> probes);

/// A bare candidate judged against the batch requirements (whole batch as
/// one shard on one back-end).
struct PlanEntry {
  BackendCandidate candidate;
  double projected_seconds = 0.0;
  double projected_joules = 0.0;
  bool meets_deadline = false;
};

struct BatchRequirements {
  std::uint64_t n_options = 0;
  double deadline_seconds = 0.0;
};

struct PlannerConfig {
  /// Probe workload sizes. Two or more distinct sizes calibrate the affine
  /// model's setup term; a single size degrades to the linear model. Every
  /// size must be >= 8 to be representative.
  std::vector<std::size_t> probe_sizes = {128, 2048};
  /// Discarded warmup runs per CPU candidate before timing (first-touch
  /// allocation, thread spawn).
  unsigned probe_warmup_runs = 1;
  /// Timed repeats per (CPU candidate, probe size); the best (minimum) time
  /// is kept. Simulated engines are deterministic and measured once.
  unsigned probe_repeats = 2;
  /// CPU thread counts to consider (empty: 1 and hardware_concurrency).
  std::vector<unsigned> cpu_thread_counts;
  /// Also probe the batched SoA fast-path CPU kernel ("cpu-batch[-mtN]") at
  /// every CPU thread count. Same power model as the scalar kernel -- the
  /// fast path wins on energy purely by finishing sooner.
  bool probe_cpu_batch = true;
  /// Also probe the SIMD vector kernel ("cpu-vec[-mtN]") at every CPU
  /// thread count -- skipped automatically when the host resolves to the
  /// scalar level (the candidate would just re-measure cpu-batch under
  /// another name). Same power model again: the planner needs no vector-
  /// specific logic, the probe->affine-fit pipeline prices the lane win by
  /// measuring it.
  bool probe_cpu_vec = true;
  /// Probe the CPU candidates in risk mode ("cpu[-batch]-risk[-mtN]") and
  /// skip the simulated candidates (they only price). Risk details (bump,
  /// ladder edges) ride in `cpu`.
  bool risk_mode = false;
  /// Plan the scenario-sweep workload instead of the batch-pricing one:
  /// enumerate_backends() probes "cpu-sweep[-mtN]" candidates only (a
  /// runtime::SweepRuntime over a fixed `sweep_probe_options` book, timed
  /// at each probe size with the warmup + best-of-N protocol), and the
  /// probe's n axis is the *scenario count* -- probe_sizes, n_options and
  /// every downstream projection then count scenarios, not options. The
  /// same affine fit and the unchanged plan_runtime() expansion apply:
  /// "cpu-sweep" parses as a single-threaded CPU name, so the worker x
  /// shard_size sweep enumerates scenario-axis sharding plans with zero
  /// sweep-specific planning logic.
  bool sweep_mode = false;
  /// Book size of the sweep probes. The book is held fixed across the
  /// probe (it is the sweep's amortised setup, the fitted intercept);
  /// only the scenario count varies.
  std::size_t sweep_probe_options = 256;
  /// Forwarded to every CPU candidate (and into the planned RuntimeConfig):
  /// risk bump size, ladder edges. batch_kernel/risk_mode/threads are
  /// overridden by each candidate's registry name.
  CpuEngineConfig cpu;
  /// FPGA engine counts to consider (empty: 1..max that fit the device).
  std::vector<unsigned> fpga_engine_counts;
  /// Worker-lane counts plan_runtime() considers for single-threaded CPU
  /// candidates (empty: 1, 2, 4, ... up to hardware_concurrency). Already-
  /// parallel candidates (cpu-mtN, multi-N, cluster-MxN) always plan at one
  /// lane -- their parallelism lives inside the engine.
  std::vector<unsigned> worker_counts;
  /// The setup-aware shard size grows shards until the per-shard setup cost
  /// is at most this fraction of the shard's per-option compute.
  double max_setup_fraction = 0.1;
  /// Device for the fit check and the FPGA count default.
  fpga::DeviceSpec device;
  fpga::FpgaPowerModel fpga_power;
  fpga::CpuPowerModel cpu_power;

  PlannerConfig();
};

/// Measures every candidate back-end on probe workloads drawn from the
/// given curves and fits its affine cost model.
std::vector<BackendCandidate> enumerate_backends(
    const cds::TermStructure& interest, const cds::TermStructure& hazard,
    const PlannerConfig& config = {});

/// Projects each bare candidate against the requirements (whole batch, one
/// shard) and returns the entries sorted: deadline-meeting entries first
/// (by energy ascending), then the rest (by time ascending).
std::vector<PlanEntry> plan_batch(const std::vector<BackendCandidate>& candidates,
                                  const BatchRequirements& requirements);

/// The cheapest candidate that meets the deadline, if any.
std::optional<PlanEntry> best_plan(const std::vector<PlanEntry>& entries);

/// One fully-specified runtime plan: a RuntimeConfig ready to hand to
/// runtime::PortfolioRuntime, plus the projection it was ranked on.
struct RuntimePlanEntry {
  /// engine x workers x shard_size (engine_replicas 0 = one per worker);
  /// `cpu` carries the PlannerConfig's risk details.
  runtime::RuntimeConfig config;
  /// The per-lane cost model the projection used.
  BackendCandidate candidate;
  /// Shards of config.shard_size covering the batch.
  std::size_t n_shards = 0;
  /// Modelled power of the whole plan (all lanes).
  double watts = 0.0;
  /// List-schedule makespan of the per-shard fitted costs (setup + size *
  /// per-option) over config.workers lanes -- the same deterministic
  /// schedule PortfolioRuntime reports as its modelled figure.
  double projected_seconds = 0.0;
  double projected_joules = 0.0;
  bool meets_deadline = false;
};

/// Expands the candidates into engine x workers x shard_size plans,
/// projects each with runtime::list_schedule_makespan over the fitted
/// per-shard costs, and returns the plans sorted: deadline-meeting first
/// (projected energy ascending), then the rest (projected time ascending).
/// Deterministic for fixed candidates and config. Throws cdsflow::Error on
/// an empty candidate set, a zero-option batch, a non-positive deadline, or
/// a candidate without a throughput measurement.
std::vector<RuntimePlanEntry> plan_runtime(
    const std::vector<BackendCandidate>& candidates,
    const BatchRequirements& requirements, const PlannerConfig& config = {});

/// Probe + fit + enumerate + rank in one call: enumerate_backends() then
/// plan_runtime() on the measured candidates.
std::vector<RuntimePlanEntry> plan_runtime(
    const cds::TermStructure& interest, const cds::TermStructure& hazard,
    const BatchRequirements& requirements, const PlannerConfig& config = {});

/// The cheapest runtime plan that meets the deadline, if any. Its `.config`
/// plugs straight into runtime::PortfolioRuntime.
std::optional<RuntimePlanEntry> best_runtime_plan(
    const std::vector<RuntimePlanEntry>& entries);

/// Incremental completion-time projection over a fixed lane pool -- the
/// planner's list schedule (runtime::list_schedule_makespan) exported as an
/// online decision procedure for admission control.
///
/// book(arrival, task) assigns the task to the earliest-free lane (lowest
/// index on ties, exactly the offline schedule's tie-break) and returns the
/// projected completion time max(arrival, lane_free) + task_seconds. When
/// every arrival is 0 the sequence of book() calls reproduces
/// list_schedule_makespan over the same task list verbatim: makespan() ==
/// the offline value, same lane assignments. project() answers "when would
/// this finish?" without committing capacity, so admission can decide to
/// shed *before* booking.
///
/// Times are seconds on an arbitrary caller-chosen epoch (the service uses
/// seconds since server start). Purely arithmetic -- no clock, no threads --
/// so admission transcripts replay deterministically in tests.
class CompletionProjector {
 public:
  explicit CompletionProjector(unsigned lanes) : lane_free_(lanes, 0.0) {
    CDSFLOW_EXPECT(lanes > 0, "completion projector needs at least one lane");
  }

  /// Projected completion were the task booked now; commits nothing.
  double project(double arrival_seconds, double task_seconds) const {
    const std::size_t lane = earliest_lane();
    return std::max(arrival_seconds, lane_free_[lane]) + task_seconds;
  }

  /// Books the task on the earliest-free lane; returns its completion time.
  double book(double arrival_seconds, double task_seconds) {
    const std::size_t lane = earliest_lane();
    lane_free_[lane] =
        std::max(arrival_seconds, lane_free_[lane]) + task_seconds;
    return lane_free_[lane];
  }

  /// Latest lane-free time across the pool. With all arrivals at 0 this is
  /// exactly runtime::list_schedule_makespan of the booked tasks.
  double makespan() const {
    return *std::max_element(lane_free_.begin(), lane_free_.end());
  }

  unsigned lanes() const { return static_cast<unsigned>(lane_free_.size()); }

 private:
  std::size_t earliest_lane() const {
    return static_cast<std::size_t>(
        std::min_element(lane_free_.begin(), lane_free_.end()) -
        lane_free_.begin());
  }

  std::vector<double> lane_free_;
};

// --- heterogeneous cluster planning -----------------------------------------
//
// The multi-process analogue of plan_runtime(): one lane per worker node,
// each node with its *own* probe-calibrated affine fit (reported over the
// wire via NODE_PROBE, see docs/PROTOCOL.md), and every shard charged its
// serialized bytes through a link model -- exactly how the paper charges
// PCIe transfer against on-device compute in its ablations. The schedule is
// the same deterministic earliest-finish list schedule the in-process
// runtime uses (runtime::list_schedule_makespan), generalised to per-lane
// costs: with identical nodes it reduces to list_schedule_makespan verbatim
// (same lowest-index tie-break). Full model derivation: docs/CLUSTER.md.

/// Cost of moving one frame across a node's link:
/// seconds(bytes) = latency + bytes / bandwidth.
struct ClusterLinkModel {
  /// One-way message latency (defaults to a loopback-socket figure; the
  /// coordinator overwrites it with a measured probe round trip).
  double latency_seconds = 50e-6;
  double bytes_per_second = 1.0e9;

  double seconds_for(std::uint64_t bytes) const {
    return latency_seconds + static_cast<double>(bytes) / bytes_per_second;
  }
};

/// One worker node as the planner sees it: where it is, how fast it prices
/// (its own affine fit) and what its link costs.
struct ClusterNode {
  std::string address;
  BackendCandidate fit;
  ClusterLinkModel link;
};

/// Modelled cost of one shard of `n_options` on `node`: the node's affine
/// fit plus the link charge for the serialized shard-price request and
/// shard-result response (exact wire sizes from net/codec.hpp).
double cluster_shard_seconds(const ClusterNode& node, std::size_t n_options,
                             bool risk);

/// One candidate cluster execution: a shard size plus the deterministic
/// shard -> node assignment the earliest-finish schedule produces for it.
struct ClusterPlanEntry {
  std::size_t shard_size = 0;
  std::size_t n_shards = 0;
  /// Node index of each shard, in shard (= submission) order.
  std::vector<std::size_t> node_of_shard;
  /// Shard count per node (size = node count).
  std::vector<std::size_t> shards_per_node;
  /// Earliest-finish makespan over the per-node modelled shard costs.
  double projected_seconds = 0.0;
  /// Sum over shards of the assigned node's watts x modelled shard cost.
  double projected_joules = 0.0;
  bool meets_deadline = false;
};

/// Enumerates shard sizes (auto, per-node setup-aware, one-shard-per-node;
/// or the caller's `shard_sizes`, each clamped to the wire bound
/// net::kMaxOptionsPerRequest), assigns shards to nodes by earliest
/// projected finish (lowest node index on ties), and returns the entries
/// sorted deadline-meeting first (projected energy ascending), then the
/// rest (projected time ascending) -- the plan_runtime() ranking. Throws
/// cdsflow::Error on an empty node set, a node without a throughput fit, a
/// zero-option batch or a non-positive deadline.
std::vector<ClusterPlanEntry> plan_cluster(
    const std::vector<ClusterNode>& nodes,
    const BatchRequirements& requirements, bool risk_mode = false,
    std::vector<std::size_t> shard_sizes = {});

/// The cheapest cluster plan that meets the deadline, if any.
std::optional<ClusterPlanEntry> best_cluster_plan(
    const std::vector<ClusterPlanEntry>& entries);

}  // namespace cdsflow::engine
