#include "common/error.hpp"

#include <sstream>

namespace cdsflow::detail {

void throw_error(const char* kind, const char* expr, const char* file,
                 int line, const std::string& message) {
  std::ostringstream os;
  os << "cdsflow " << kind << " violated: " << message << " [" << expr
     << "] at " << file << ":" << line;
  throw Error(os.str());
}

}  // namespace cdsflow::detail
