/// \file stage_library.hpp
/// Builder for the CDS dataflow stage graph (paper Fig. 2).
///
/// The graph wired into a Simulation:
///
///   option source ──> option broadcast ────────────────────────────┐
///        │ (red, per option)                                       │
///        v                                                         │
///   time-point generator (expand)                                  │
///        │ (blue, per time point)                                  │
///        v                                                         │
///   tp broadcast ──────────────┬──────────────┐                    │
///        v                     v                                   │
///   hazard integration    rate interpolation                       │
///   [lane pool if         [lane pool if                            │
///    vectorised]           vectorised]                             │
///        v                     v                                   │
///   default probability   discount factor                          │
///        v                     v                                   │
///   survival broadcast    discount broadcast                       │
///      │    │    │          │    │    │                            │
///      v    v    v          v    v    v                            │
///   premium  payoff  accrual   (zip stages, one per leg)           │
///        v       v       v                                         │
///   accumulate x3 (reduce, per option)                             │
///        └───────┴───────┴───> spread combine (zip) <──────────────┘
///                                   v
///                              result sink
///
/// kOptimised instantiates single hazard/interpolation stages (the
/// "Optimised Dataflow" and "Dataflow inter-options" engines share this
/// shape); kVectorised replaces both with round-robin replicated pools
/// (paper Fig. 3). All numerical kernels are the cds:: reference functions,
/// so the simulated engines produce real spreads that tests compare against
/// the golden model.

#pragma once

#include <cstdint>
#include <span>

#include "cds/curve.hpp"
#include "cds/types.hpp"
#include "engines/engine.hpp"
#include "engines/tokens.hpp"
#include "hls/replicate.hpp"
#include "hls/stage.hpp"
#include "sim/simulation.hpp"

namespace cdsflow::engine {

enum class GraphVariant {
  /// Single hazard/interpolation unit (paper's optimised dataflow engine).
  kOptimised,
  /// Replicated hazard/interpolation pools (paper's vectorised engine).
  kVectorised,
};

/// Pointers into the constructed graph for result collection and
/// introspection (lane utilisation in the Fig. 3 bench, stall counters in
/// the ablations). All pointers are owned by the Simulation.
struct GraphHandles {
  hls::SourceStage<OptionToken>* source = nullptr;
  hls::SinkStage<cds::SpreadResult>* sink = nullptr;
  std::uint64_t total_time_points = 0;

  /// Per-option end-to-end latency in cycles (option enters the engine ->
  /// spread leaves), in submission order. Valid after the simulation ran.
  std::vector<sim::Cycle> option_latencies() const;

  /// kOptimised: the single units; null for kVectorised.
  hls::StageBase* hazard_unit = nullptr;
  hls::StageBase* interp_unit = nullptr;

  /// kVectorised: pool handles; empty for kOptimised.
  hls::ReplicatedPoolHandles<TimePointToken, HazardToken> hazard_pool;
  hls::ReplicatedPoolHandles<TimePointToken, RateToken> interp_pool;
};

/// Wires the full graph into `sim`. The curves must outlive the simulation
/// run; `options` are copied into the source stage.
GraphHandles build_cds_dataflow_graph(sim::Simulation& sim,
                                      const cds::TermStructure& interest,
                                      const cds::TermStructure& hazard,
                                      std::span<const cds::CdsOption> options,
                                      const FpgaEngineConfig& config,
                                      GraphVariant variant);

/// Latency percentiles of a run, in kernel cycles.
struct LatencyStats {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

LatencyStats latency_stats(const std::vector<sim::Cycle>& latencies);

}  // namespace cdsflow::engine
