/// \file service.hpp
/// The multi-tenant pricing service: net::ServerHandler glue between the
/// socket server's event loop and the per-tenant sessions.
///
/// Request path (all on the loop thread):
///
///   frame in ----> semantic validation -------------------+-- reject
///      |           (tenant known? mode right?              |  (machine-
///      |            options in range? knot in curve?)      |   readable
///      v                                                   |   reason)
///   admission (tenant's AdmissionController:               |
///     projected completion vs deadline class) -- shed -----+
///      |                 |
///    admit             defer
///      v                 v
///   tenant StreamRuntime ingest (frame order)
///      |
///   on_tick: poll_batches -> per-request result spans -> kResult frames
///            (status byte says on-time vs deferred)
///
/// Reject taxonomy (net::RejectReason): codec-level poisoning is kMalformed
/// with connection teardown (nothing behind a framing error is trustworthy);
/// semantically-invalid-but-well-framed requests are kMalformed with the
/// connection kept; kUnknownTenant / kWrongMode / kOverload likewise keep
/// the connection -- the client is speaking the protocol fine.
///
/// Shutdown: with stop_when_idle set (tests, client-replay), the service
/// stops the server once every connection has come and gone and no request
/// is in flight. Destruction drains every tenant runtime.

#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cds/curve.hpp"
#include "io/csv.hpp"
#include "net/server.hpp"
#include "service/tenant.hpp"

namespace cdsflow::service {

struct ServiceConfig {
  std::vector<TenantSpec> tenants;
  /// Stop the server once at least one connection has been seen, all are
  /// gone and no request is pending (replay/test mode). Off: serve forever.
  bool stop_when_idle = false;
};

/// Wire/admission accounting across all tenants.
struct ServiceStats {
  std::uint64_t frames = 0;
  std::uint64_t quote_updates = 0;
  std::uint64_t requests = 0;
  std::uint64_t admitted = 0;
  std::uint64_t deferred = 0;
  std::uint64_t shed = 0;
  std::uint64_t responses = 0;
  std::uint64_t rejects_malformed = 0;
  std::uint64_t rejects_unknown_tenant = 0;
  std::uint64_t rejects_wrong_mode = 0;
  std::uint64_t connections_poisoned = 0;
};

class PricingService : public net::ServerHandler {
 public:
  /// Builds one TenantSession (and so one StreamRuntime) per configured
  /// tenant; the curves are shared by all tenants (each session copies
  /// them, per-tenant hazard updates stay tenant-local).
  PricingService(ServiceConfig config, const cds::TermStructure& interest,
                 const cds::TermStructure& hazard);

  void on_frame(net::Server& server, int conn, net::Frame frame) override;
  void on_malformed(net::Server& server, int conn,
                    const std::string& error) override;
  void on_tick(net::Server& server) override;
  void on_disconnect(int conn) override;

  /// Drains every tenant runtime and returns the leftover completed
  /// requests (only meaningful before any response path needs them; the
  /// idle-stop path calls this itself). Idempotent.
  std::vector<TenantSession::Completed> drain_all();

  const ServiceStats& stats() const { return stats_; }
  TenantSession* session(std::uint32_t tenant);
  const TenantSession* session(std::uint32_t tenant) const;
  /// Per-tenant ingest-to-response latency CDF rows (io CSV schema), all
  /// tenants concatenated in id order.
  std::vector<io::LatencyCdfRow> latency_rows() const;
  /// Seconds since service construction -- the admission/latency clock.
  double now_seconds() const;

 private:
  void send_reject(net::Server& server, int conn, std::uint32_t tenant,
                   std::uint32_t request, net::RejectReason reason,
                   std::string detail);
  void send_completed(net::Server& server,
                      const std::vector<TenantSession::Completed>& batch,
                      std::uint32_t tenant);

  ServiceConfig config_;
  /// Loop-thread-confined, not lock-guarded: the session registry and the
  /// stats are touched only from the net::Server poll loop's callbacks
  /// (plus construction/drain before the loop starts and after it exits).
  /// Cross-thread traffic reaches the sessions only through each tenant's
  /// StreamRuntime, whose internals carry the real capabilities -- see
  /// docs/CONCURRENCY.md. Adding a mutex here would claim a concurrency
  /// the single-threaded event loop never has.
  std::map<std::uint32_t, std::unique_ptr<TenantSession>> sessions_;
  ServiceStats stats_;
  std::chrono::steady_clock::time_point epoch_;
  bool saw_connection_ = false;
  bool drained_ = false;
};

}  // namespace cdsflow::service
