/// \file worker.hpp
/// Cluster worker: one process's side of the multi-process scale-out plane.
///
/// A worker is a net::ServerHandler wrapping a local
/// runtime::PortfolioRuntime. The coordinator (coordinator.hpp) probes it
/// with NODE_PROBE -- the worker answers with its lane count and its
/// probe-calibrated affine fit (setup + n / options_per_second, the same
/// model the in-process planner fits) -- then streams SHARD_PRICE frames at
/// it; each shard is priced whole by the local runtime and answered with a
/// SHARD_RESULT carrying the rows plus the engine-reported time. Wire
/// format: docs/PROTOCOL.md; topology and merge contract: docs/CLUSTER.md.
///
/// Determinism: the worker prices exactly the options it was sent with the
/// engine it was configured with, so as long as every worker in a cluster
/// runs the same engine name, the coordinator's shard-order merge is
/// bit-identical to a single-process run (the registry determinism
/// guarantee -- thread-count variants never change per-option arithmetic).
///
/// All callbacks run on the server's loop thread, so worker state needs no
/// locks. One shard is in flight per connection at a time on the happy
/// path; pipelined shards are simply answered in order.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cds/curve.hpp"
#include "engines/planner.hpp"
#include "net/server.hpp"
#include "runtime/portfolio_runtime.hpp"

namespace cdsflow::cluster {

struct WorkerConfig {
  /// Local runtime the shards are priced on (engine x workers x
  /// shard_size, any registry engine).
  runtime::RuntimeConfig runtime;
  /// Affine fit reported to NODE_PROBE. When options_per_second is 0 the
  /// worker calibrates itself at construction: it times the local runtime
  /// at `probe_sizes` (warmup + best-of-N, the planner's probe protocol)
  /// and fits the affine model. Pin it (options_per_second > 0) for
  /// deterministic tests and benches.
  engine::BackendCandidate fit;
  std::vector<std::size_t> probe_sizes = {256, 2048};
  unsigned probe_warmup_runs = 1;
  unsigned probe_repeats = 2;
  /// Stop the server once at least one connection was seen and all are
  /// gone (single-shot launcher scripts).
  bool stop_when_idle = false;
  /// Test-only fault injection: after answering this many shards, drop the
  /// connection instead of answering the next one (simulates a worker
  /// dying mid-shard; 0 disables).
  std::size_t fail_after_shards = 0;
};

struct WorkerStats {
  std::uint64_t probes = 0;
  std::uint64_t shards = 0;
  std::uint64_t options = 0;
  std::uint64_t rejects = 0;
  std::uint64_t connections_poisoned = 0;
  std::uint64_t injected_failures = 0;
};

class ClusterWorker : public net::ServerHandler {
 public:
  /// Builds the local runtime (and, when the fit is not pinned, runs the
  /// calibration probes). Throws cdsflow::Error on unknown engine names.
  ClusterWorker(cds::TermStructure interest, cds::TermStructure hazard,
                WorkerConfig config);

  void on_frame(net::Server& server, int conn, net::Frame frame) override;
  void on_malformed(net::Server& server, int conn,
                    const std::string& error) override;
  void on_tick(net::Server& server) override;
  void on_disconnect(int conn) override;

  const engine::BackendCandidate& fit() const { return fit_; }
  bool risk_mode() const { return risk_mode_; }
  const WorkerStats& stats() const { return stats_; }

 private:
  WorkerConfig config_;
  /// Loop-thread-confined, not lock-guarded: every callback runs on the
  /// worker's single net::Server poll loop, and the stats are read after
  /// serve() returned. The runtime's internals (pool, replica free-list,
  /// collector) carry the real capabilities; see docs/CONCURRENCY.md.
  runtime::PortfolioRuntime runtime_;
  engine::BackendCandidate fit_;
  bool risk_mode_ = false;
  bool saw_connection_ = false;
  WorkerStats stats_;
};

}  // namespace cdsflow::cluster
