/// \file test_latency.cpp
/// Unit tests for end-to-end latency tracking (the AAT streaming extension):
/// emission/arrival recording, per-option latency extraction, percentile
/// stats, and the queueing behaviour under paced arrivals.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "engines/interoption_engine.hpp"
#include "engines/vectorised_engine.hpp"
#include "workload/scenario.hpp"

namespace cdsflow::engine {
namespace {

TEST(Percentile, KnownValues) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.5);
  EXPECT_THROW(percentile({}, 50.0), Error);
  EXPECT_THROW(percentile(xs, 101.0), Error);
}

TEST(LatencyStats, ComputedFromCycles) {
  const std::vector<sim::Cycle> latencies = {100, 200, 300, 400};
  const auto stats = latency_stats(latencies);
  EXPECT_DOUBLE_EQ(stats.mean, 250.0);
  EXPECT_DOUBLE_EQ(stats.max, 400.0);
  EXPECT_LE(stats.p50, stats.p95);
  EXPECT_LE(stats.p95, stats.p99);
  EXPECT_THROW(latency_stats({}), Error);
}

TEST(Latency, FreeRunningEngineReportsPerOptionLatency) {
  const auto scenario = workload::smoke_scenario(16, 5);
  InterOptionEngine engine(scenario.interest, scenario.hazard, {});
  engine.price(scenario.options);
  const auto& latencies = engine.last_run().option_latency_cycles;
  ASSERT_EQ(latencies.size(), scenario.options.size());
  for (const auto l : latencies) EXPECT_GT(l, 0u);
}

TEST(Latency, VectorisedEngineReportsPerOptionLatency) {
  const auto scenario = workload::smoke_scenario(16, 5);
  VectorisedEngine engine(scenario.interest, scenario.hazard, {});
  engine.price(scenario.options);
  const auto& latencies = engine.last_run().option_latency_cycles;
  ASSERT_EQ(latencies.size(), scenario.options.size());
}

TEST(Latency, QueueingGrowsAtFullRate) {
  // Back-to-back arrivals saturate the bottleneck stage: later options wait
  // behind earlier ones, so latency climbs through the batch. Sparse
  // arrivals (pace slower than the bottleneck) keep every option near the
  // isolated pipeline latency.
  const auto scenario = workload::paper_scenario(24);

  InterOptionEngine saturated(scenario.interest, scenario.hazard, {});
  saturated.price(scenario.options);
  const auto sat = latency_stats(saturated.last_run().option_latency_cycles);

  FpgaEngineConfig paced_cfg;
  paced_cfg.option_arrival_pace = [](const OptionToken& opt) {
    // Slower than the worst-case option service time (~40 time points x
    // ~1k cycles of interpolation scan).
    return static_cast<sim::Cycle>(opt.n_points) * 1100 + 2000;
  };
  InterOptionEngine paced(scenario.interest, scenario.hazard, paced_cfg);
  paced.price(scenario.options);
  const auto idle = latency_stats(paced.last_run().option_latency_cycles);

  EXPECT_GT(sat.p99, 5.0 * idle.p99);     // deep queueing at saturation
  EXPECT_LT(idle.max, 1.2 * idle.p50 * 3);  // paced latencies stay tight
}

TEST(Latency, FirstOptionSeesPipelineLatencyOnly) {
  const auto scenario = workload::paper_scenario(8);
  InterOptionEngine engine(scenario.interest, scenario.hazard, {});
  engine.price(scenario.options);
  const auto& latencies = engine.last_run().option_latency_cycles;
  // Option 0 never queues: its latency is the pure pipeline traversal,
  // strictly below the batch's worst case.
  EXPECT_LT(latencies.front(), latencies.back());
}

TEST(Latency, PacedArrivalsDoNotChangeResults) {
  const auto scenario = workload::smoke_scenario(12, 9);
  InterOptionEngine batch(scenario.interest, scenario.hazard, {});
  const auto batch_run = batch.price(scenario.options);

  FpgaEngineConfig cfg;
  cfg.option_arrival_pace = [](const OptionToken&) {
    return sim::Cycle{5000};
  };
  InterOptionEngine paced(scenario.interest, scenario.hazard, cfg);
  const auto paced_run = paced.price(scenario.options);

  ASSERT_EQ(batch_run.results.size(), paced_run.results.size());
  for (std::size_t i = 0; i < batch_run.results.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch_run.results[i].spread_bps,
                     paced_run.results[i].spread_bps);
  }
  // Pacing slows the batch, of course.
  EXPECT_GT(paced_run.kernel_cycles, batch_run.kernel_cycles);
}

}  // namespace
}  // namespace cdsflow::engine
