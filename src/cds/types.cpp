#include "cds/types.hpp"

#include <sstream>

#include "common/error.hpp"

namespace cdsflow::cds {

void CdsOption::validate() const {
  CDSFLOW_EXPECT(maturity_years > 0.0,
                 "option maturity must be positive (id=" + std::to_string(id) +
                     ")");
  CDSFLOW_EXPECT(payment_frequency > 0.0,
                 "payment frequency must be positive (id=" +
                     std::to_string(id) + ")");
  CDSFLOW_EXPECT(recovery_rate >= 0.0 && recovery_rate < 1.0,
                 "recovery rate must lie in [0, 1) (id=" + std::to_string(id) +
                     ")");
}

std::string to_string(const CdsOption& option) {
  std::ostringstream os;
  os << "CdsOption{id=" << option.id << ", maturity=" << option.maturity_years
     << "y, freq=" << option.payment_frequency
     << "/y, recovery=" << option.recovery_rate << "}";
  return os.str();
}

}  // namespace cdsflow::cds
