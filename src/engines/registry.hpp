/// \file registry.hpp
/// Name-based engine construction for examples and benches.
///
/// Recognised names:
///   "cpu"                   single-thread CPU engine (scalar kernel)
///   "cpu-mt"                CPU engine on all hardware threads
///   "cpu-mt<N>"             CPU engine on N threads (e.g. "cpu-mt8")
///   "cpu-batch"             single-thread batched SoA fast-path kernel
///   "cpu-batch-mt"          batch kernel on all hardware threads
///   "cpu-batch-mt<N>"       batch kernel on N threads
///   "xilinx-baseline"       Vitis library model
///   "dataflow"              optimised dataflow, restart per option
///   "dataflow-interoption"  free-running dataflow
///   "vectorised"            vectorised free-running dataflow
///   "multi-<N>"             N vectorised engines (e.g. "multi-5")
///   "cluster-<M>x<N>"       M cards of N vectorised engines each

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cds/curve.hpp"
#include "engines/cpu_engine.hpp"
#include "engines/engine.hpp"

namespace cdsflow::engine {

/// Constructs an engine by name. Throws cdsflow::Error for unknown names.
std::unique_ptr<Engine> make_engine(const std::string& name,
                                    const cds::TermStructure& interest,
                                    const cds::TermStructure& hazard,
                                    const FpgaEngineConfig& fpga_config = {},
                                    const CpuEngineConfig& cpu_config = {});

/// All fixed registry names (the parametrised multi-N/cpu-mtN forms are
/// represented by "multi-5" and "cpu-mt").
std::vector<std::string> engine_names();

}  // namespace cdsflow::engine
