/// \file vectorised_engine.hpp
/// The "Vectorisation of dataflow engine" (paper Table I, row 5; Fig. 3).
///
/// The hazard-integration and rate-interpolation sub-functions -- the only
/// stages needing many cycles per time point -- are replicated
/// `vector_lanes` times (paper: six). A round-robin scheduler streams each
/// lane its input data from dual-ported URAM curve replicas and the
/// defaulting-probability/discount stages consume lane results cyclically,
/// preserving order. Because the URAM ports feed at most two curve elements
/// per cycle into a pool, six lanes deliver ~2x, exactly as the paper
/// reports; the lane-sweep ablation shows the saturation.

#pragma once

#include "cds/curve.hpp"
#include "engines/engine.hpp"
#include "engines/stage_library.hpp"

namespace cdsflow::engine {

class VectorisedEngine final : public Engine {
 public:
  VectorisedEngine(cds::TermStructure interest, cds::TermStructure hazard,
                   FpgaEngineConfig config = {});

  std::string name() const override { return "vectorised"; }
  std::string description() const override;

  PricingRun price(const std::vector<cds::CdsOption>& options) override;

  /// Per-lane busy cycles from the most recent run (Fig. 3 bench).
  struct LaneStats {
    std::vector<sim::Cycle> hazard_lane_busy;
    std::vector<sim::Cycle> interp_lane_busy;
    sim::Cycle hazard_scheduler_busy = 0;
    sim::Cycle interp_scheduler_busy = 0;
    sim::Cycle span = 0;
    /// Per-option end-to-end latency in kernel cycles, submission order.
    std::vector<sim::Cycle> option_latency_cycles;
  };
  const LaneStats& last_run() const { return last_run_; }

 private:
  cds::TermStructure interest_;
  cds::TermStructure hazard_;
  FpgaEngineConfig config_;
  LaneStats last_run_;
};

}  // namespace cdsflow::engine
