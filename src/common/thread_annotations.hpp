/// \file thread_annotations.hpp
/// Clang Thread Safety Analysis capabilities for the concurrent runtime.
///
/// The paper's central argument is that a disciplined dataflow structure
/// makes parallelism *provably* well-formed instead of empirically tested.
/// The CPU reproduction mirrors that at the language level: every mutex in
/// the runtime is an annotated capability, every field it protects carries
/// CDSFLOW_GUARDED_BY, and every private method that assumes the lock is
/// held says so with CDSFLOW_REQUIRES. Under Clang the build runs with
/// -Werror=thread-safety, so a lock-discipline violation is a compile
/// error -- not a TSan report contingent on the interleavings a test
/// happens to execute. Under GCC (no analysis) the macros expand to
/// nothing and the wrappers degrade to thin shims over the std types;
/// behaviour is identical.
///
/// Vocabulary (mirrors the Clang documentation and abseil's mutex.h):
///   * CDSFLOW_GUARDED_BY(mu)    -- field may only be touched holding mu.
///   * CDSFLOW_REQUIRES(mu)      -- caller must already hold mu.
///   * CDSFLOW_ACQUIRE / CDSFLOW_RELEASE -- function takes / drops mu.
///   * CDSFLOW_EXCLUDES(mu)      -- caller must NOT hold mu (deadlock
///                                  guard for public entry points).
///   * cdsflow::Mutex            -- std::mutex as an annotated capability.
///   * cdsflow::MutexLock        -- annotated std::lock_guard equivalent.
///   * cdsflow::UniqueLock       -- annotated std::unique_lock equivalent;
///                                  native() feeds std::condition_variable.
///
/// Thread-confined state (a dispatcher's counters, an event-loop handler's
/// maps) is deliberately NOT annotated: the analysis has no vocabulary for
/// confinement, and a fake capability would only obscure the real
/// publication contract. Such fields carry a comment naming the owning
/// thread and the publication point instead (see docs/CONCURRENCY.md).

#pragma once

#include <mutex>

// Capability attributes are a Clang extension; `__has_attribute` (itself
// probed with #ifdef, the blessed idiom) keeps the header honest on
// compilers that grow or drop them. GCC takes the empty-macro branch.
#if defined(__clang__)
#ifdef __has_attribute
#if __has_attribute(guarded_by) && __has_attribute(acquire_capability)
#define CDSFLOW_THREAD_ANNOTATION(x) __attribute__((x))
/// Set when the attributes are live, so code (and the cluster smoke
/// script, via `cdsflow_cli build-info`) can tell an analysed build from a
/// degraded one.
#define CDSFLOW_THREAD_SAFETY_ANNOTATED 1
#endif
#endif
#endif
#if !defined(CDSFLOW_THREAD_ANNOTATION)
#define CDSFLOW_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define CDSFLOW_CAPABILITY(name) CDSFLOW_THREAD_ANNOTATION(capability(name))
#define CDSFLOW_SCOPED_CAPABILITY CDSFLOW_THREAD_ANNOTATION(scoped_lockable)
#define CDSFLOW_GUARDED_BY(x) CDSFLOW_THREAD_ANNOTATION(guarded_by(x))
#define CDSFLOW_PT_GUARDED_BY(x) CDSFLOW_THREAD_ANNOTATION(pt_guarded_by(x))
#define CDSFLOW_REQUIRES(...) \
  CDSFLOW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CDSFLOW_ACQUIRE(...) \
  CDSFLOW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CDSFLOW_TRY_ACQUIRE(...) \
  CDSFLOW_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define CDSFLOW_RELEASE(...) \
  CDSFLOW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CDSFLOW_EXCLUDES(...) \
  CDSFLOW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define CDSFLOW_ACQUIRED_BEFORE(...) \
  CDSFLOW_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define CDSFLOW_ACQUIRED_AFTER(...) \
  CDSFLOW_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define CDSFLOW_RETURN_CAPABILITY(x) \
  CDSFLOW_THREAD_ANNOTATION(lock_returned(x))
#define CDSFLOW_NO_THREAD_SAFETY_ANALYSIS \
  CDSFLOW_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cdsflow {

/// std::mutex as a Clang TSA capability. Same size, same semantics; the
/// attribute is the only addition. The primitive bodies forward to the
/// unannotated std::mutex, which the analysis cannot see, so they opt out
/// of intra-body checking -- the caller-side attributes (the point of the
/// exercise) are unaffected. native() exists for the rare caller that must
/// hand the raw mutex to a std facility (condition_variable via
/// UniqueLock::native()).
class CDSFLOW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CDSFLOW_ACQUIRE() CDSFLOW_NO_THREAD_SAFETY_ANALYSIS {
    mu_.lock();
  }
  void unlock() CDSFLOW_RELEASE() CDSFLOW_NO_THREAD_SAFETY_ANALYSIS {
    mu_.unlock();
  }
  bool try_lock() CDSFLOW_TRY_ACQUIRE(true) CDSFLOW_NO_THREAD_SAFETY_ANALYSIS {
    return mu_.try_lock();
  }

  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Annotated std::lock_guard equivalent: acquires in the constructor,
/// releases in the destructor, no unlocking in between.
class CDSFLOW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CDSFLOW_ACQUIRE(mu)
      CDSFLOW_NO_THREAD_SAFETY_ANALYSIS : mu_(mu) {
    mu_.lock();
  }
  ~MutexLock() CDSFLOW_RELEASE() CDSFLOW_NO_THREAD_SAFETY_ANALYSIS {
    mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Annotated std::unique_lock equivalent for the condition-variable wait
/// paths: native() is the std::unique_lock a std::condition_variable
/// expects, and unlock() supports the unlock-then-notify idiom. The
/// analysis tracks the held/released state of the scoped capability across
/// an explicit unlock(), so the destructor only releases what is still
/// held.
class CDSFLOW_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) CDSFLOW_ACQUIRE(mu)
      CDSFLOW_NO_THREAD_SAFETY_ANALYSIS : lock_(mu.native()) {}
  ~UniqueLock() CDSFLOW_RELEASE() CDSFLOW_NO_THREAD_SAFETY_ANALYSIS = default;

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void unlock() CDSFLOW_RELEASE() CDSFLOW_NO_THREAD_SAFETY_ANALYSIS {
    lock_.unlock();
  }

  /// The raw lock for std::condition_variable::wait(...). The wait
  /// releases and reacquires the mutex internally -- a capability no-op,
  /// which is exactly how the analysis treats an opaque call.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace cdsflow
