#!/usr/bin/env python3
"""Entry point for the cdslint source linter (implementation lives in
tools/cdslint/cdslint.py). Registered as the `cdslint` / `cdslint_selftest`
CTest entries and run by the CI lint job:

  python3 scripts/cdslint.py <repo-root>
  python3 scripts/cdslint.py --self-test
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools" / "cdslint"))

import cdslint  # noqa: E402

if __name__ == "__main__":
    sys.exit(cdslint.main(sys.argv))
