/// \file bench_listing1_hazard.cpp
/// Reproduces paper Listing 1: the 7-way partial-sum rewrite of the hazard
/// accumulation.
///
/// Two views of the same fix:
///
///  1. *Simulated* (the paper's actual claim): a pipelined scan with a
///     carried double add has II=7; replicating the accumulator into seven
///     partial sums recovers II=1. Reported as cycles per 1024-element scan
///     from the hls::MapStage model.
///
///  2. *Native* (bonus evidence): the identical transformation breaks the
///     serial FP dependency chain on a CPU too, so google-benchmark shows a
///     real speedup for the partial-lane sum over the naive sum.
///
/// The benchmark also checks both orders agree to tight tolerance.

#include <benchmark/benchmark.h>

#include <vector>

#include "cds/hazard.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "fpga/hls_cost_model.hpp"
#include "workload/curves.hpp"

namespace {

using namespace cdsflow;

std::vector<double> make_values(std::size_t n) {
  Rng rng(123);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.uniform(0.0, 1e-3);
  return xs;
}

// --- native: naive vs Listing-1 partial sums --------------------------------

void BM_Native_AccumulateNaive(benchmark::State& state) {
  const auto xs = make_values(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cds::accumulate_naive(xs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Native_AccumulateNaive)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_Native_AccumulateListing1(benchmark::State& state) {
  const auto xs = make_values(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cds::accumulate_partial_lanes<7>(xs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Native_AccumulateListing1)->Arg(1024)->Arg(8192)->Arg(65536);

// --- native: integrated hazard, library order vs Listing-1 order -----------

void BM_Native_IntegratedHazard(benchmark::State& state) {
  const auto hazard = workload::paper_hazard_curve();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cds::integrated_hazard(hazard, 7.5));
  }
}
BENCHMARK(BM_Native_IntegratedHazard);

void BM_Native_IntegratedHazardListing1(benchmark::State& state) {
  const auto hazard = workload::paper_hazard_curve();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cds::integrated_hazard_listing1(hazard, 7.5, 7));
  }
}
BENCHMARK(BM_Native_IntegratedHazardListing1);

// --- simulated: scan cycles at II=7 vs II=1 ---------------------------------
// The paper's arithmetic: a length-L scan at II=7 occupies ~7L cycles; the
// Listing-1 version occupies ~L plus a short fold epilogue. Modelled exactly
// as the engines charge it (fpga::HlsCostModel).

void BM_Sim_ScanCyclesII7(benchmark::State& state) {
  const auto& cost = fpga::default_cost_model();
  const auto len = static_cast<sim::Cycle>(state.range(0));
  sim::Cycle cycles = 0;
  for (auto _ : state) {
    cycles = len * cost.baseline_accumulation_ii + cost.loop_overhead_cycles;
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["scan_cycles"] =
      benchmark::Counter(static_cast<double>(cycles));
  state.counters["values_per_cycle"] = benchmark::Counter(
      static_cast<double>(len) / static_cast<double>(cycles));
}
BENCHMARK(BM_Sim_ScanCyclesII7)->Arg(1024);

void BM_Sim_ScanCyclesListing1(benchmark::State& state) {
  const auto& cost = fpga::default_cost_model();
  const auto len = static_cast<sim::Cycle>(state.range(0));
  sim::Cycle cycles = 0;
  for (auto _ : state) {
    cycles = len * cost.optimised_accumulation_ii +
             cost.listing1_epilogue_cycles + cost.loop_overhead_cycles;
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["scan_cycles"] =
      benchmark::Counter(static_cast<double>(cycles));
  state.counters["values_per_cycle"] = benchmark::Counter(
      static_cast<double>(len) / static_cast<double>(cycles));
}
BENCHMARK(BM_Sim_ScanCyclesListing1)->Arg(1024);

// --- agreement check (runs once at static init of the bench binary) --------

void BM_CheckOrdersAgree(benchmark::State& state) {
  const auto hazard = workload::paper_hazard_curve();
  double max_rel = 0.0;
  for (auto _ : state) {
    for (double t : {0.5, 2.0, 7.5, 15.0, 29.0}) {
      const double a = cds::integrated_hazard(hazard, t);
      const double b = cds::integrated_hazard_listing1(hazard, t, 7);
      max_rel = std::max(max_rel, relative_difference(a, b));
    }
    benchmark::DoNotOptimize(max_rel);
  }
  state.counters["max_rel_difference"] = benchmark::Counter(max_rel);
  if (max_rel > 1e-12) {
    state.SkipWithError("summation orders disagree beyond 1e-12");
  }
}
BENCHMARK(BM_CheckOrdersAgree);

}  // namespace
