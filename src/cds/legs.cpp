#include "cds/legs.hpp"

#include <cmath>

#include "cds/hazard.hpp"
#include "common/error.hpp"

namespace cdsflow::cds {

double discount_factor(const TermStructure& interest, double t) {
  CDSFLOW_EXPECT(t >= 0.0, "discount factor requires t >= 0");
  const double r = interest.interpolate(t);
  return std::exp(-r * t);
}

LegTerms leg_terms(const TermStructure& interest, double survival_prev,
                   double survival_now, double t, double dt) {
  return leg_terms_from_discount(discount_factor(interest, t), survival_prev,
                                 survival_now, dt);
}

LegTerms leg_terms_from_discount(double discount, double survival_prev,
                                 double survival_now, double dt) {
  const double dq = survival_prev - survival_now;
  LegTerms terms;
  terms.premium = discount * survival_now * dt;
  terms.accrual = 0.5 * discount * dq * dt;
  terms.payoff = discount * dq;
  return terms;
}

PricingBreakdown price_breakdown(const TermStructure& interest,
                                 const TermStructure& hazard,
                                 const CdsOption& option) {
  std::vector<TimePoint> scratch;
  return price_breakdown(interest, hazard, option, scratch);
}

PricingBreakdown price_breakdown(const TermStructure& interest,
                                 const TermStructure& hazard,
                                 const CdsOption& option,
                                 std::vector<TimePoint>& scratch) {
  option.validate();
  scratch.clear();
  make_schedule(option, scratch);
  PricingBreakdown out;
  double payoff_sum = 0.0;
  double q_prev = 1.0;  // Q(0)
  for (const TimePoint& tp : scratch) {
    const double q = survival_probability(hazard, tp.t);
    const LegTerms terms = leg_terms(interest, q_prev, q, tp.t, tp.dt);
    out.premium_leg += terms.premium;
    out.accrual_leg += terms.accrual;
    payoff_sum += terms.payoff;
    q_prev = q;
  }
  out.protection_leg = (1.0 - option.recovery_rate) * payoff_sum;
  out.spread_bps = combine_spread_bps(out.premium_leg, out.accrual_leg,
                                      payoff_sum, option.recovery_rate);
  return out;
}

double combine_spread_bps(double premium_leg, double accrual_leg,
                          double payoff_sum, double recovery_rate) {
  const double annuity = premium_leg + accrual_leg;
  CDSFLOW_EXPECT(annuity > 0.0,
                 "risky annuity must be positive to quote a spread");
  const double protection = (1.0 - recovery_rate) * payoff_sum;
  return kBasisPointsPerUnit * protection / annuity;
}

}  // namespace cdsflow::cds
