#include "sim/simulation.hpp"

#include <algorithm>
#include <sstream>

namespace cdsflow::sim {

Process& Simulation::add(std::unique_ptr<Process> p) {
  CDSFLOW_EXPECT(p != nullptr, "add() requires a process");
  processes_.push_back(std::move(p));
  return *processes_.back();
}

SimResult Simulation::run(Cycle max_cycles) {
  CDSFLOW_EXPECT(!processes_.empty(), "run() requires at least one process");
  SimResult result;
  now_ = 0;

  while (true) {
    // --- settle the current cycle to quiescence -------------------------
    // A correct process only reports progress when state actually changed,
    // so this loop terminates; the guard catches contract violations
    // (a process that claims progress forever would otherwise hang us).
    bool cycle_was_active = false;
    bool progressed = true;
    std::uint64_t settle_rounds = 0;
    const std::uint64_t settle_limit = 16 + 4 * processes_.size();
    while (progressed) {
      progressed = false;
      for (auto& p : processes_) {
        if (p->done()) continue;
        ++result.total_steps;
        if (p->step(now_)) progressed = true;
      }
      cycle_was_active |= progressed;
      CDSFLOW_ASSERT(++settle_rounds <= settle_limit,
                     "settle loop did not converge at cycle " +
                         std::to_string(now_) +
                         " -- a process reports progress without state "
                         "change");
    }
    if (cycle_was_active) ++result.active_cycles;

    // --- completion check ------------------------------------------------
    const bool all_done =
        std::all_of(processes_.begin(), processes_.end(),
                    [](const auto& p) { return p->done(); });
    if (all_done) {
      result.end_cycle = now_;
      return result;
    }

    // --- advance time to the earliest self-driven wake-up ----------------
    Cycle next = kNoWake;
    for (auto& p : processes_) {
      if (p->done()) continue;
      next = std::min(next, p->next_wake(now_));
    }
    if (next == kNoWake) report_deadlock();
    CDSFLOW_ASSERT(next > now_,
                   "next_wake must be strictly in the future (process "
                   "returned cycle " +
                       std::to_string(next) + " at " + std::to_string(now_) +
                       ")");
    CDSFLOW_EXPECT(next <= max_cycles,
                   "simulation exceeded max_cycles=" +
                       std::to_string(max_cycles));
    now_ = next;
  }
}

void Simulation::report_deadlock() const {
  std::ostringstream os;
  os << "dataflow deadlock at cycle " << now_
     << ": no process can make progress and none has a pending timer.\n"
     << "Processes:\n";
  for (const auto& p : processes_) {
    if (p->done()) continue;
    os << "  [" << p->name() << "] " << p->describe_state() << '\n';
  }
  os << "Channels:\n";
  for (const auto& c : channels_) {
    os << "  [" << c->name() << "] " << c->size() << '/' << c->capacity()
       << (c->full() ? " FULL" : (c->empty() ? " EMPTY" : "")) << '\n';
  }
  throw Error(os.str());
}

}  // namespace cdsflow::sim
